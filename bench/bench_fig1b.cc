// Reproduces the paper's Figure 1b: on Coauthor CS, the CL ladder
// InfoNCE -> +SupCon -> +SupCon+CE raises the imbalance rate (Eq. 2) and
// the separation rate (Eq. 3) while trading novel-class accuracy for
// seen-class accuracy; OpenIMA suppresses the imbalance while improving the
// separation, gaining on both.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_two_stage
//        --batch --dataset=coauthor_cs

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

struct Fig1bRef {
  const char* method;
  double imbalance;
  double separation;  // -1 when garbled in the source
  double seen;
  double novel;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  options.compute_extra_metrics = true;
  const std::string dataset_name =
      flags.GetString("dataset", "coauthor_cs");
  auto spec = graph::GetBenchmark(dataset_name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  // Paper Fig. 1b reference values (Coauthor CS, averaged over ten runs).
  const Fig1bRef refs[] = {
      {"infonce", 1.002, 1.239, 72.8, 72.7},
      {"infonce_supcon", 1.071, 1.271, 75.1, 71.0},
      {"infonce_supcon_ce", 1.089, -1.0, 77.1, 73.0},
      {"openima", 1.048, 1.430, 78.3, 75.9},
  };

  Table t({"Method", "Imbalance", "Separation", "Seen", "Novel",
           "paper Imb", "paper Sep", "paper Seen", "paper Novel"});
  t.SetTitle(StrFormat(
      "Figure 1b: variance imbalance vs accuracy on %s "
      "(scale=%.3f, %d seed(s))",
      spec->name.c_str(), options.scale, options.num_seeds));

  for (const auto& ref : refs) {
    auto agg = eval::RunMethod(*spec, ref.method, options);
    if (!agg.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", ref.method,
                   agg.status().ToString().c_str());
      return 1;
    }
    t.AddRow({agg->display_name, StrFormat("%.3f", agg->MeanImbalance()),
              StrFormat("%.3f", agg->MeanSeparation()),
              Pct(agg->MeanSeen()), Pct(agg->MeanNovel()),
              StrFormat("%.3f", ref.imbalance),
              ref.separation < 0 ? "-" : StrFormat("%.3f", ref.separation),
              StrFormat("%.1f", ref.seen), StrFormat("%.1f", ref.novel)});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): imbalance rises along the supervision\n"
      "ladder while novel accuracy falls; OpenIMA keeps imbalance below the\n"
      "+SupCon/+CE variants while reaching the highest separation and the\n"
      "best seen AND novel accuracies.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
