// Reproduces the paper's Table III: overall open-world SSL evaluation on
// the five medium benchmarks (Citeseer, Amazon Photos, Amazon Computers,
// Coauthor CS, Coauthor Physics) across all twelve methods, reporting
// All / Seen / Novel test accuracy next to the paper's reported numbers.
//
// Flags: --scale --seeds --features --hidden --heads --epochs_two_stage
//        --epochs_end_to_end --batch --datasets=a,b,c --methods=x,y

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/util/flags.h"

namespace openima {
namespace {

using bench::PaperRef;

/// Paper Table III values (%); -1 where the source rendering was illegible.
const std::map<std::string, std::map<std::string, PaperRef>>& PaperTable3() {
  static const auto* table =
      new std::map<std::string, std::map<std::string, PaperRef>>{
          {"citeseer",
           {{"oodgat", {-1, 56.9, 37.5}},
            {"openwgl", {-1, 71.0, 54.2}},
            {"orca_zm", {58.3, 70.6, 44.4}},
            {"orca", {58.2, -1, 49.0}},
            {"simgcd", {61.5, -1, 53.4}},
            {"openldn", {62.3, -1, 51.6}},
            {"opencon", {68.8, -1, 62.1}},
            {"opencon_2stage", {66.7, -1, 60.0}},
            {"infonce", {68.1, 70.7, 65.2}},
            {"infonce_supcon", {68.1, 71.9, 64.1}},
            {"infonce_supcon_ce", {68.1, 73.6, 62.6}},
            {"openima", {68.1, 71.8, 64.3}}}},
          {"amazon_photos",
           {{"oodgat", {-1, 71.1, 54.5}},
            {"openwgl", {-1, 74.8, 69.3}},
            {"orca_zm", {74.6, 89.9, 58.2}},
            {"orca", {76.2, 87.1, 64.9}},
            {"simgcd", {80.5, 90.0, 70.8}},
            {"openldn", {80.9, 90.6, 71.9}},
            {"opencon", {82.6, 92.1, 72.8}},
            {"opencon_2stage", {82.9, 87.9, 78.1}},
            {"infonce", {76.3, 78.5, 75.1}},
            {"infonce_supcon", {75.6, 80.3, 72.0}},
            {"infonce_supcon_ce", {76.4, 80.5, 72.9}},
            {"openima", {83.6, 89.9, 77.3}}}},
          {"amazon_computers",
           {{"oodgat", {61.3, 63.3, 55.9}},
            {"openwgl", {57.6, 65.9, 44.6}},
            {"orca_zm", {63.8, 73.7, 52.6}},
            {"orca", {60.9, 67.8, 53.7}},
            {"simgcd", {61.9, 73.8, 50.3}},
            {"openldn", {63.3, 76.5, 51.8}},
            {"opencon", {62.3, 74.9, 51.2}},
            {"opencon_2stage", {59.4, 69.0, 53.2}},
            {"infonce", {56.1, 51.3, 59.1}},
            {"infonce_supcon", {56.3, 52.5, 58.9}},
            {"infonce_supcon_ce", {55.8, 54.7, 56.5}},
            {"openima", {67.8, 77.8, 59.0}}}},
          {"coauthor_cs",
           {{"oodgat", {68.1, 68.8, 65.6}},
            {"openwgl", {58.6, 67.1, 50.3}},
            {"orca_zm", {75.0, 74.2, 73.5}},
            {"orca", {73.9, 81.6, 68.3}},
            {"simgcd", {71.2, 84.2, 61.2}},
            {"openldn", {68.4, 80.6, 60.3}},
            {"opencon", {73.5, 83.4, 67.5}},
            {"opencon_2stage", {71.0, 81.9, 64.8}},
            {"infonce", {72.2, 72.8, 72.7}},
            {"infonce_supcon", {72.4, 75.1, 71.0}},
            {"infonce_supcon_ce", {74.4, 77.1, 73.0}},
            {"openima", {77.1, 78.3, 75.9}}}},
          {"coauthor_physics",
           {{"oodgat", {68.3, 69.4, 62.5}},
            {"openwgl", {73.3, 85.0, 68.1}},
            {"orca_zm", {64.7, 81.1, 55.9}},
            {"orca", {66.2, 84.8, 58.2}},
            {"simgcd", {60.9, 81.1, 52.8}},
            {"openldn", {62.2, 72.4, 57.2}},
            {"opencon", {65.8, 95.0, 55.4}},
            {"opencon_2stage", {62.6, 83.8, 54.4}},
            {"infonce", {60.6, 58.1, 60.2}},
            {"infonce_supcon", {60.5, 59.7, 59.8}},
            {"infonce_supcon_ce", {62.8, 79.4, 56.1}},
            {"openima", {78.0, 93.6, 72.2}}}},
      };
  return *table;
}

std::vector<std::string> ParseList(const std::string& csv,
                                   const std::vector<std::string>& fallback) {
  if (csv.empty()) return fallback;
  return Split(csv, ',');
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  const std::vector<std::string> datasets = ParseList(
      flags.GetString("datasets", ""),
      {"citeseer", "amazon_photos", "amazon_computers", "coauthor_cs",
       "coauthor_physics"});
  const std::vector<std::string> methods =
      ParseList(flags.GetString("methods", ""), eval::AllMethodKeys());

  for (const auto& dataset_name : datasets) {
    auto spec = graph::GetBenchmark(dataset_name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    Table t({"Method", "All", "Seen", "Novel", "paper All", "paper Seen",
             "paper Novel"});
    t.SetTitle(StrFormat("Table III — %s (scale=%.3f, %d seed(s))",
                         spec->name.c_str(), options.scale,
                         options.num_seeds));
    double best_all = -1.0, openima_all = -1.0;
    std::string best_method;
    for (const auto& method : methods) {
      auto agg = eval::RunMethod(*spec, method, options);
      if (!agg.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", method.c_str(),
                     dataset_name.c_str(), agg.status().ToString().c_str());
        return 1;
      }
      PaperRef ref;
      auto dit = PaperTable3().find(dataset_name);
      if (dit != PaperTable3().end()) {
        auto mit = dit->second.find(method);
        if (mit != dit->second.end()) ref = mit->second;
      }
      std::vector<std::string> row = {agg->display_name};
      bench::AddAccuracyCells(*agg, ref, &row);
      t.AddRow(std::move(row));
      if (agg->MeanAll() > best_all) {
        best_all = agg->MeanAll();
        best_method = agg->display_name;
      }
      if (method == "openima") openima_all = agg->MeanAll();
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("best overall: %s (%.1f%%); OpenIMA: %.1f%%\n\n",
                best_method.c_str(), 100.0 * best_all, 100.0 * openima_all);
  }
  std::printf(
      "Expected shape (paper): OpenIMA has the best (or tied-best) overall\n"
      "accuracy on every dataset, balancing seen and novel classes; the\n"
      "C+1 extensions (OODGAT/OpenWGL) and vision-born open-world SSL\n"
      "baselines trail it without pre-trained encoders.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
