// Reproduces the paper's Table VI: open-world SSL evaluation WITHOUT
// knowing the true number of novel classes. Following §V-E, the bench
// (1) trains an InfoNCE model and estimates a rough novel-class count from
// the silhouette coefficient over its embeddings, then (2) treats the count
// as a hyper-parameter: for each candidate around the estimate it trains
// the model and selects the candidate by the SC&ACC metric.
//
// Flags: --scale --seeds --features --hidden --heads --epochs --batch
//        --datasets=a,b --candidates=3

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/core/novel_count.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/metrics/sc_acc.h"
#include "src/util/flags.h"

namespace openima {
namespace {

using bench::PaperRef;

const std::map<std::string, std::map<std::string, PaperRef>>& PaperTable6() {
  static const auto* table =
      new std::map<std::string, std::map<std::string, PaperRef>>{
          {"citeseer",
           {{"orca_zm", {52.2, 70.1, 35.1}},
            {"orca", {52.8, 65.6, 40.2}},
            {"opencon", {53.4, 68.8, 39.3}},
            {"openima", {67.6, 73.8, 60.4}}}},
          {"amazon_photos",
           {{"orca_zm", {69.3, 84.4, 52.6}},
            {"orca", {71.8, 82.2, 59.0}},
            {"opencon", {80.9, 92.2, 70.3}},
            {"openima", {74.7, 77.8, 67.4}}}},
          {"amazon_computers",
           {{"orca_zm", {-1, 74.3, 57.6}},
            {"orca", {64.4, 75.1, 52.1}},
            {"opencon", {-1, 80.4, 51.9}},
            {"openima", {67.0, 72.9, 58.2}}}},
          {"coauthor_cs",
           {{"orca_zm", {-1, -1, 72.9}},
            {"orca", {72.9, 75.6, 70.3}},
            {"opencon", {-1, -1, 66.9}},
            {"openima", {80.2, 78.9, 80.0}}}},
          {"coauthor_physics",
           {{"orca_zm", {69.7, 63.6, 67.5}},
            {"orca", {70.9, 70.4, 67.1}},
            {"opencon", {58.3, 94.9, 44.0}},
            {"openima", {74.4, 72.1, 73.9}}}},
      };
  return *table;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 1;  // sweep is expensive
  options.compute_extra_metrics = true;
  const int half_window = flags.GetInt("candidates", 1);

  // Default to three datasets (the full five exceed a sensible single-core
  // budget); pass --datasets=... for the rest.
  std::vector<std::string> datasets = {"citeseer", "coauthor_cs"};
  if (flags.Has("datasets")) {
    datasets = Split(flags.GetString("datasets", ""), ',');
  }
  const std::vector<std::string> methods = {"orca_zm", "orca", "opencon",
                                            "openima"};

  for (const auto& dataset_name : datasets) {
    auto spec = graph::GetBenchmark(dataset_name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }

    // Step 1: rough estimate from InfoNCE embeddings + silhouette (§V-E).
    int estimate = 0;
    {
      auto dataset = eval::MakeExperimentDataset(*spec, options);
      auto split = eval::MakeExperimentSplit(*dataset, *spec, options, 0);
      if (!dataset.ok() || !split.ok()) return 1;
      eval::MethodContext ctx =
          eval::MakeContext(*spec, "infonce", options, split->num_seen,
                            split->num_novel, dataset->feature_dim(), 555);
      auto infonce = eval::MakeClassifier("infonce", ctx);
      if (!infonce.ok() || !(*infonce)->Train(*dataset, *split).ok()) {
        std::fprintf(stderr, "InfoNCE pre-training failed on %s\n",
                     dataset_name.c_str());
        return 1;
      }
      core::NovelCountOptions nco;
      nco.num_seen = split->num_seen;
      nco.min_novel = 1;
      nco.max_novel = 10;
      Rng rng(777);
      auto est = core::EstimateNovelClassCount((*infonce)->Embeddings(*dataset),
                                               nco, &rng);
      if (!est.ok()) {
        std::fprintf(stderr, "estimation failed: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      estimate = est->best_novel;
      std::printf(
          "%s: silhouette estimate of novel-class count = %d (true: %d)\n",
          dataset_name.c_str(), estimate, split->num_novel);
    }

    // Step 2: SC&ACC selection over candidates around the estimate.
    Table t({"Method", "chosen C-bar", "All", "Seen", "Novel", "paper All",
             "paper Seen", "paper Novel"});
    t.SetTitle(StrFormat("Table VI — %s with unknown novel-class count",
                         dataset_name.c_str()));
    for (const auto& method : methods) {
      std::vector<int> candidates;
      for (int c = std::max(1, estimate - half_window);
           c <= estimate + half_window; ++c) {
        candidates.push_back(c);
      }
      std::vector<double> sc, acc;
      std::vector<eval::MethodAggregate> aggs;
      for (int c : candidates) {
        eval::ExperimentOptions run_options = options;
        run_options.override_num_novel = c;
        auto agg = eval::RunMethod(*spec, method, run_options);
        if (!agg.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                       agg.status().ToString().c_str());
          return 1;
        }
        sc.push_back(agg->MeanSilhouette());
        acc.push_back(agg->MeanValAcc());
        aggs.push_back(std::move(*agg));
      }
      auto combined = metrics::CombineScAcc(sc, acc);
      if (!combined.ok()) return 1;
      const int pick = metrics::ArgmaxIndex(*combined);
      const auto& best = aggs[static_cast<size_t>(pick)];
      PaperRef ref;
      auto dit = PaperTable6().find(dataset_name);
      if (dit != PaperTable6().end()) {
        auto mit = dit->second.find(method);
        if (mit != dit->second.end()) ref = mit->second;
      }
      std::vector<std::string> row = {
          best.display_name,
          StrFormat("%d", candidates[static_cast<size_t>(pick)])};
      bench::AddAccuracyCells(best, ref, &row);
      t.AddRow(std::move(row));
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf(
      "Expected shape (paper): OpenIMA keeps the best overall accuracy on\n"
      "most datasets even when the novel-class count must be selected by\n"
      "SC&ACC rather than given.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
