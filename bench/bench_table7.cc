// Reproduces the paper's Table VII: comparison of hyper-parameter search
// metrics — SC (silhouette), ACC (validation accuracy), and the paper's
// SC&ACC — on Amazon Photos. For every method a small hyper-parameter grid
// is trained; each selection metric picks one candidate and the bench
// reports the picked model's test accuracy and seen/novel gap.
//
// Flags: --scale --seeds --features --hidden --heads --batch
//        --dataset=amazon_photos --methods=a,b

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/metrics/sc_acc.h"
#include "src/util/flags.h"

namespace openima {
namespace {

struct PaperCells {
  double all, seen, novel, gap;
};

/// Paper Table VII (Amazon Photos), per method x metric.
const std::map<std::string, std::map<std::string, PaperCells>>& PaperTable7() {
  static const auto* table =
      new std::map<std::string, std::map<std::string, PaperCells>>{
          {"orca_zm",
           {{"SC", {54.4, 67.3, 39.0, 28.3}},
            {"ACC", {71.4, 86.5, 54.9, 31.6}},
            {"SC&ACC", {74.6, 89.9, 58.2, 31.7}}}},
          {"orca",
           {{"SC", {41.4, 44.7, 33.9, 10.8}},
            {"ACC", {73.3, 85.8, 60.3, 25.5}},
            {"SC&ACC", {76.2, 87.1, 64.9, 22.2}}}},
          {"simgcd",
           {{"SC", {79.6, 87.7, 71.9, 15.8}},
            {"ACC", {79.5, 92.1, 66.1, 26.0}},
            {"SC&ACC", {80.5, 90.0, 70.8, 19.2}}}},
          {"openldn",
           {{"SC", {48.6, 48.9, 46.0, 2.9}},
            {"ACC", {71.6, 88.4, 52.3, 36.1}},
            {"SC&ACC", {80.9, 90.6, 71.9, 18.7}}}},
          {"opencon",
           {{"SC", {83.6, 90.8, 76.0, 14.8}},
            {"ACC", {82.0, 92.3, 72.0, 20.3}},
            {"SC&ACC", {82.6, 92.1, 72.8, 19.3}}}},
          {"opencon_2stage",
           {{"SC", {80.4, 85.7, 74.9, 10.8}},
            {"ACC", {81.2, 91.5, 71.8, 19.7}},
            {"SC&ACC", {82.9, 87.9, 78.1, 9.8}}}},
          {"infonce",
           {{"SC", {77.0, 77.1, 77.5, 0.4}},
            {"ACC", {75.4, 78.5, 73.4, 5.1}},
            {"SC&ACC", {76.3, 78.5, 75.1, 3.4}}}},
          {"infonce_supcon",
           {{"SC", {77.2, 77.5, 77.3, 0.2}},
            {"ACC", {75.5, 79.7, 72.4, 7.3}},
            {"SC&ACC", {75.6, 80.3, 72.0, 8.3}}}},
          {"infonce_supcon_ce",
           {{"SC", {77.6, 78.5, 77.2, 1.3}},
            {"ACC", {75.5, 79.7, 71.8, 7.9}},
            {"SC&ACC", {76.4, 80.5, 72.9, 7.6}}}},
          {"openima",
           {{"SC", {83.3, 89.3, 77.1, 12.2}},
            {"ACC", {82.1, 90.6, 73.4, 17.2}},
            {"SC&ACC", {83.6, 89.9, 77.3, 12.6}}}},
      };
  return *table;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 1;  // grid is expensive
  options.compute_extra_metrics = true;
  const std::string dataset_name = flags.GetString("dataset", "amazon_photos");
  auto spec = graph::GetBenchmark(dataset_name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> methods = {
      "orca_zm", "orca",    "simgcd",         "openldn",
      "opencon", "opencon_2stage", "infonce", "infonce_supcon",
      "infonce_supcon_ce", "openima"};
  if (flags.Has("methods")) {
    methods = Split(flags.GetString("methods", ""), ',');
  }

  // The searched grid: epoch budget (a proxy for the per-method learning
  // rate / schedule searches of §VII, cheap enough for CPU).
  const std::vector<double> lr_grid = {1e-3, 3e-3, 1e-2};

  Table t({"Method", "Metric", "All", "Seen", "Novel", "Gap", "paper All",
           "paper Gap"});
  t.SetTitle(StrFormat(
      "Table VII — selection-metric comparison on %s (%d seed(s), grid over "
      "lr {1e-3, 3e-3, 1e-2})",
      dataset_name.c_str(), options.num_seeds));

  for (const auto& method : methods) {
    std::vector<double> sc, acc;
    std::vector<eval::MethodAggregate> aggs;
    for (double lr : lr_grid) {
      eval::ExperimentOptions run_options = options;
      run_options.grid_lr = lr;
      auto agg = eval::RunMethod(*spec, method, run_options);
      if (!agg.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                     agg.status().ToString().c_str());
        return 1;
      }
      sc.push_back(agg->MeanSilhouette());
      acc.push_back(agg->MeanValAcc());
      aggs.push_back(std::move(*agg));
    }
    auto combined = metrics::CombineScAcc(sc, acc);
    if (!combined.ok()) return 1;

    struct Selection {
      const char* metric;
      int index;
    };
    const Selection selections[] = {
        {"SC", metrics::ArgmaxIndex(sc)},
        {"ACC", metrics::ArgmaxIndex(acc)},
        {"SC&ACC", metrics::ArgmaxIndex(*combined)},
    };
    for (const auto& sel : selections) {
      const auto& agg = aggs[static_cast<size_t>(sel.index)];
      PaperCells paper = {-1, -1, -1, -1};
      auto mit = PaperTable7().find(method);
      if (mit != PaperTable7().end()) {
        auto cit = mit->second.find(sel.metric);
        if (cit != mit->second.end()) paper = cit->second;
      }
      t.AddRow({agg.display_name, sel.metric, Pct(agg.MeanAll()),
                Pct(agg.MeanSeen()), Pct(agg.MeanNovel()),
                Pct(agg.SeenNovelGap()), bench::RefPct(paper.all),
                bench::RefPct(paper.gap)});
    }
    t.AddSeparator();
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): selecting by validation ACC biases models\n"
      "toward seen classes (larger Gap); SC favors balanced but sometimes\n"
      "weak models; SC&ACC is the most stable across methods.\n");
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
