// Full-scale sampled-training benchmark: trains OpenIMA end to end
// (training + pseudo-label refresh + open-world eval) on an *unscaled*
// ogbn-arxiv-sized synthetic graph — 169,343 nodes, ~1.17M undirected
// edges — in neighbor-sampled minibatch mode, and records the scaling
// numbers the full-graph trainer cannot produce at this size: peak RSS,
// per-epoch wall time and seed-node throughput. By default the run is a
// worker sweep — the serial trainer followed by the deterministic
// data-parallel trainer at 8 workers (DESIGN.md §2.8) — so the committed
// record carries the scaling row next to its serial baseline.
//
// Run (writes the committed record): ./bench_scale --bench-json=BENCH_scale.json
// Knobs:
//   --scale=1.0 --features=128          # graph size / feature cap
//   --epochs=3 --sample-fanout=10 --batch-nodes=1024
//   --hidden=64 --heads=2 --threads=N
//   --workers=8                         # single run at W workers instead
//                                       # of the sweep (OPENIMA_WORKERS
//                                       # env; flag wins)
//   --workers-list=0,8                  # sweep rows (0 = serial trainer)
//
// The JSON uses the "openima-bench-train" schema (EXPERIMENTS.md). Timing
// fields carry their aggregation in the name: whole-run totals end in _ms
// (train_ms, epoch_ms, sample_total_ms, gather_total_ms — run_diff ignores
// *_ms by default) and per-batch phase means end in _ms_per_batch (also in
// run_diff's default ignore set). The machine-dependent peak_rss_mib /
// nodes_per_sec fields are default-ignored too; the "final" block is the
// regression-gated payload.

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/benchmarks.h"
#include "src/graph/splits.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/obs/obs.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace {

double PeakRssMib() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Cumulative sample/gather phase totals from the global metrics registry
/// (nanoseconds + event counts). The registry accumulates across runs, so
/// per-run numbers are snapshot diffs. Matching by suffix covers both the
/// serial trainer's "train/epoch/sample" path and the data-parallel
/// workers' "worker/sample".
struct PhaseTotals {
  double sample_ns = 0, gather_ns = 0;
  long long sample_count = 0, gather_count = 0;
};

PhaseTotals SnapshotPhases() {
  PhaseTotals t;
  const openima::obs::MetricsSnapshot snap =
      openima::obs::MetricsRegistry::Global()->Snapshot();
  for (const auto& [hist_name, hist] : snap.histograms) {
    if (hist.count == 0) continue;
    if (hist_name.ends_with("/sample")) {
      t.sample_ns += static_cast<double>(hist.sum);
      t.sample_count += hist.count;
    } else if (hist_name.ends_with("/gather")) {
      t.gather_ns += static_cast<double>(hist.sum);
      t.gather_count += hist.count;
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace openima;

  Flags flags(argc, argv);
  const int threads = flags.GetInt("threads", -1);
  if (threads >= 0) exec::SetDefaultNumThreads(threads);
  obs::InitFromEnv();

  const double scale = flags.GetDouble("scale", 1.0);
  const int max_features = flags.GetInt("features", 128);
  auto spec = graph::GetBenchmark("ogbn_arxiv");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  Stopwatch gen_watch;
  auto dataset = graph::MakeDataset(*spec, scale, max_features, /*seed=*/42);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const double gen_ms = gen_watch.ElapsedMillis();
  std::printf("graph: %d nodes, %lld undirected edges, %d classes "
              "(generated in %.1f s)\n",
              dataset->num_nodes(),
              static_cast<long long>(dataset->graph.num_undirected_edges()),
              dataset->num_classes, gen_ms / 1000.0);

  graph::SplitOptions split_options;
  split_options.labeled_per_class = spec->labeled_per_class;
  split_options.val_per_class = spec->labeled_per_class;
  auto split = graph::MakeOpenWorldSplit(*dataset, split_options, /*seed=*/7);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }

  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = flags.GetInt("hidden", 64);
  config.encoder.embedding_dim = config.encoder.hidden_dim;
  config.encoder.num_heads = flags.GetInt("heads", 2);
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = flags.GetInt("epochs", 3);
  config.lr = 5e-3f;
  // The paper's large-graph recipe: mini-batch K-Means refreshes and
  // head-based prediction — the only pieces that still see all n nodes.
  config.large_graph_mode = true;
  config.sampled_training = true;
  config.sample_fanout = flags.GetInt("sample-fanout", 10);
  config.batch_nodes = flags.GetInt("batch-nodes", 1024);
  config.pseudo_warmup_epochs = 1;

  // Worker counts to record: an explicit --workers (or a deliberate
  // OPENIMA_WORKERS env on an ad-hoc run; run_benches.sh refuses a leaked
  // one) pins a single row, otherwise the default sweep pairs the serial
  // trainer with the 8-worker data-parallel row.
  const auto env_int = [](const char* name, int fallback) {
    const char* v = std::getenv(name);
    return v == nullptr ? fallback : std::atoi(v);
  };
  std::vector<int> worker_counts;
  const int single = flags.GetInt("workers", env_int("OPENIMA_WORKERS", -1));
  if (single >= 0) {
    worker_counts.push_back(single);
  } else {
    for (const std::string& part :
         Split(flags.GetString("workers-list", "0,8"), ',')) {
      if (!part.empty()) worker_counts.push_back(std::atoi(part.c_str()));
    }
  }

  using obs::json::Value;
  Value runs = Value::Array();
  for (const int workers : worker_counts) {
    config.workers = workers;
    std::printf("sampled training: fanout %d, %d seed nodes/batch, %d "
                "epochs, %d data-parallel workers\n",
                config.sample_fanout, config.batch_nodes, config.epochs,
                config.workers);

    const PhaseTotals before = SnapshotPhases();
    core::OpenImaModel model(config, dataset->feature_dim(), /*seed=*/1);
    Stopwatch train_watch;
    if (Status s = model.Train(*dataset, *split); !s.ok()) {
      std::fprintf(stderr, "train: %s\n", s.ToString().c_str());
      return 1;
    }
    const double train_ms = train_watch.ElapsedMillis();
    const PhaseTotals after = SnapshotPhases();

    Stopwatch eval_watch;
    auto predictions = model.Predict(*dataset, *split);
    if (!predictions.ok()) {
      std::fprintf(stderr, "predict: %s\n",
                   predictions.status().ToString().c_str());
      return 1;
    }
    std::vector<int> test_preds, test_labels;
    for (int v : split->test_nodes) {
      test_preds.push_back((*predictions)[static_cast<size_t>(v)]);
      test_labels.push_back(split->remapped_labels[static_cast<size_t>(v)]);
    }
    auto acc = metrics::EvaluateOpenWorld(test_preds, test_labels,
                                          split->num_seen,
                                          split->num_total_classes());
    if (!acc.ok()) {
      std::fprintf(stderr, "eval: %s\n", acc.status().ToString().c_str());
      return 1;
    }
    const double eval_ms = eval_watch.ElapsedMillis();

    // Every epoch shuffles all n nodes into seed batches, so throughput is
    // seed nodes consumed per second of training wall time.
    const double epoch_ms = train_ms / config.epochs;
    const double nodes_per_sec =
        static_cast<double>(dataset->num_nodes()) * config.epochs /
        (train_ms / 1000.0);
    const double peak_rss_mib = PeakRssMib();

    std::printf("train: %.1f s total, %.1f s/epoch, %.0f nodes/s\n",
                train_ms / 1000.0, epoch_ms / 1000.0, nodes_per_sec);
    std::printf(
        "eval: %.1f s; accuracy all %.1f%% seen %.1f%% novel %.1f%%\n",
        eval_ms / 1000.0, 100.0 * acc->all, 100.0 * acc->seen,
        100.0 * acc->novel);
    std::printf("peak RSS: %.0f MiB\n", peak_rss_mib);

    Value entry = Value::Object();
    entry.Set("name", Value::Str(workers > 0
                                     ? "scale/ogbn_arxiv_sampled_dp" +
                                           std::to_string(workers)
                                     : "scale/ogbn_arxiv_sampled"));
    entry.Set("epochs", Value::Int(config.epochs));
    entry.Set("sample_fanout", Value::Int(config.sample_fanout));
    entry.Set("batch_nodes", Value::Int(config.batch_nodes));
    entry.Set("workers", Value::Int(workers));
    entry.Set("generate_ms", Value::Double(gen_ms));
    entry.Set("train_ms", Value::Double(train_ms));
    entry.Set("epoch_ms", Value::Double(epoch_ms));
    entry.Set("eval_ms", Value::Double(eval_ms));
    entry.Set("peak_rss_mib", Value::Double(peak_rss_mib));
    entry.Set("nodes_per_sec", Value::Double(nodes_per_sec));
    // Phase timings for this run's sampled loop, in BOTH aggregations:
    // per-batch means (what a kernel change moves) and whole-run totals
    // (what the epoch wall time is made of) — the bare ambiguous
    // sample_ms/gather_ms keys are retired.
    const double sample_ns = after.sample_ns - before.sample_ns;
    const double gather_ns = after.gather_ns - before.gather_ns;
    const long long sample_n = after.sample_count - before.sample_count;
    const long long gather_n = after.gather_count - before.gather_count;
    if (sample_n > 0) {
      entry.Set("sample_ms_per_batch",
                Value::Double(sample_ns / static_cast<double>(sample_n) / 1e6));
      entry.Set("sample_total_ms", Value::Double(sample_ns / 1e6));
    }
    if (gather_n > 0) {
      entry.Set("gather_ms_per_batch",
                Value::Double(gather_ns / static_cast<double>(gather_n) / 1e6));
      entry.Set("gather_total_ms", Value::Double(gather_ns / 1e6));
    }
    Value final_metrics = Value::Object();
    final_metrics.Set("loss",
                      Value::Double(model.train_stats().epoch_losses.back()));
    final_metrics.Set(
        "pseudo_labels",
        Value::Int(model.train_stats().pseudo_labeled_last_epoch));
    final_metrics.Set("acc_all", Value::Double(acc->all));
    final_metrics.Set("acc_seen", Value::Double(acc->seen));
    final_metrics.Set("acc_novel", Value::Double(acc->novel));
    entry.Set("final", std::move(final_metrics));
    runs.Append(std::move(entry));
  }

  const std::string bench_json_path = flags.GetString("bench-json", "");
  if (!bench_json_path.empty()) {
    Value doc = Value::Object();
    doc.Set("schema", Value::Str("openima-bench-train"));
    Value run_meta = Value::Object();
    run_meta.Set("dataset", Value::Str(dataset->name));
    run_meta.Set("num_nodes", Value::Int(dataset->num_nodes()));
    run_meta.Set("mode", Value::Str("sampled"));
    doc.Set("run", std::move(run_meta));
    doc.Set("runs", std::move(runs));

    const std::string text = doc.Dump(1);
    std::FILE* f = std::fopen(bench_json_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "bench-json: cannot write %s\n",
                   bench_json_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote scale benchmark to %s\n", bench_json_path.c_str());
  }
  return 0;
}
