// Sampled-vs-full quality gate: trains OpenIMA twice per medium benchmark
// (the five non-ogbn graphs of Table II) — once with the full-graph trainer
// and once in neighbor-sampled minibatch mode — and writes one
// "openima-bench-train" document per mode with identical run names. The
// two documents feed `tools/run_diff --tolerances
// tools/sampled_quality_tolerances.json`: sampling is a gradient estimator,
// not a bit-identical rewrite, so the gate bounds the open-world accuracy
// gap instead of demanding equality (wired as the sampled_quality_diff
// ctest fixture; see run_benches.sh for the committed-artifact flow).
//
// Run: ./bench_sampled_quality --out-full=BENCH_quality_full.json \
//                              --out-sampled=BENCH_quality_sampled.json
// Knobs: the shared bench flags (--scale --seeds --features --hidden
// --heads --epochs_end_to_end --threads) plus --sample-fanout/--batch-nodes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/experiment.h"
#include "src/graph/benchmarks.h"
#include "src/obs/json.h"
#include "src/util/flags.h"

namespace {

using openima::obs::json::Value;

bool WriteDoc(const std::string& path, Value doc) {
  const std::string text = doc.Dump(1);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    return false;
  }
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace openima;

  Flags flags(argc, argv);
  eval::ExperimentOptions options = bench::OptionsFromFlags(flags);
  const int fanout = flags.GetInt("sample-fanout", 10);
  const int batch_nodes = flags.GetInt("batch-nodes", 256);
  const std::string out_full =
      flags.GetString("out-full", "BENCH_quality_full.json");
  const std::string out_sampled =
      flags.GetString("out-sampled", "BENCH_quality_sampled.json");

  Value full_runs = Value::Array();
  Value sampled_runs = Value::Array();
  for (const graph::BenchmarkSpec& spec : graph::AllBenchmarks()) {
    if (spec.large_scale) continue;  // ogbn graphs are bench_scale's job
    struct ModeResult {
      const char* mode;
      bool sampled;
      Value* runs;
    };
    const ModeResult modes[] = {{"full", false, &full_runs},
                                {"sampled", true, &sampled_runs}};
    for (const ModeResult& mode : modes) {
      auto agg = eval::RunOpenImaVariant(
          spec, mode.mode, options, [&](core::OpenImaConfig* config) {
            config->sampled_training = mode.sampled;
            config->sample_fanout = fanout;
            config->batch_nodes = batch_nodes;
          });
      if (!agg.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", spec.name.c_str(), mode.mode,
                     agg.status().ToString().c_str());
        return 1;
      }
      std::printf("%-18s %-8s all %.1f%%  seen %.1f%%  novel %.1f%%\n",
                  spec.name.c_str(), mode.mode, 100.0 * agg->MeanAll(),
                  100.0 * agg->MeanSeen(), 100.0 * agg->MeanNovel());
      Value entry = Value::Object();
      // Same name in both documents so run_diff pairs the entries.
      entry.Set("name", Value::Str("quality/" + spec.name));
      entry.Set("seeds", Value::Int(options.num_seeds));
      Value final_metrics = Value::Object();
      final_metrics.Set("acc_all", Value::Double(agg->MeanAll()));
      final_metrics.Set("acc_seen", Value::Double(agg->MeanSeen()));
      final_metrics.Set("acc_novel", Value::Double(agg->MeanNovel()));
      entry.Set("final", std::move(final_metrics));
      mode.runs->Append(std::move(entry));
    }
  }

  auto make_doc = [&](Value runs) {
    Value doc = Value::Object();
    doc.Set("schema", Value::Str("openima-bench-train"));
    Value run_meta = Value::Object();
    run_meta.Set("scale", Value::Double(options.scale));
    run_meta.Set("sample_fanout", Value::Int(fanout));
    run_meta.Set("batch_nodes", Value::Int(batch_nodes));
    doc.Set("run", std::move(run_meta));
    doc.Set("runs", std::move(runs));
    return doc;
  };
  if (!WriteDoc(out_full, make_doc(std::move(full_runs)))) return 1;
  std::printf("wrote %s\n", out_full.c_str());
  if (!WriteDoc(out_sampled, make_doc(std::move(sampled_runs)))) return 1;
  std::printf("wrote %s\n", out_sampled.c_str());
  return 0;
}
