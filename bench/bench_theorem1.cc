// Reproduces the paper's Theorem 1 (§IV-A, proof in §VI): the relationship
// between the variance-imbalance rate gamma, the separation alpha, and the
// per-class K-Means accuracies in the two-Gaussian model — both from the
// closed-form fixed point and from Monte-Carlo K-Means runs.
//
// Flags: --samples=20000 --dim=1

#include <cstdio>

#include "bench/bench_util.h"
#include "src/theory/two_gaussian.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace openima {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int samples = flags.GetInt("samples", 20000);
  const int dim = flags.GetInt("dim", 1);
  Rng rng(20240705);

  std::printf(
      "Theorem 1(1): with alpha in (1.5, 3), shrinking sigma1 (raising the\n"
      "imbalance rate gamma) must lower the novel-class accuracy ACC2.\n\n");
  {
    Table t({"gamma", "sigma1", "s*", "ACC1 (theory)", "ACC2 (theory)",
             "ACC1 (K-Means)", "ACC2 (K-Means)"});
    t.SetTitle("alpha = 2.0, sigma2 = 0.2 fixed; gamma = sigma2/sigma1");
    double prev_acc2 = 2.0;
    bool monotone = true;
    for (double gamma = 1.0; gamma <= 2.0001; gamma += 0.2) {
      theory::TwoGaussianModel m;
      m.sigma2 = 0.2;
      m.sigma1 = 0.2 / gamma;
      m.mu2 = 2.0 * (m.sigma1 + m.sigma2);
      auto s = theory::SolveFixedPoint(m);
      if (!s.ok()) {
        std::fprintf(stderr, "fixed point failed: %s\n",
                     s.status().ToString().c_str());
        return 1;
      }
      const auto acc = theory::ExpectedAccuracies(m, *s);
      auto mc = theory::MonteCarloKMeansAccuracy(m, samples, dim, &rng);
      t.AddRow({StrFormat("%.1f", gamma), StrFormat("%.3f", m.sigma1),
                StrFormat("%.4f", *s), StrFormat("%.4f", acc.acc1),
                StrFormat("%.4f", acc.acc2),
                mc.ok() ? StrFormat("%.4f", mc->acc1) : "-",
                mc.ok() ? StrFormat("%.4f", mc->acc2) : "-"});
      monotone = monotone && acc.acc2 < prev_acc2 + 1e-12;
      prev_acc2 = acc.acc2;
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("ACC2 monotonically decreasing in gamma: %s (paper: yes)\n\n",
                monotone ? "yes" : "NO");
  }

  std::printf(
      "Theorem 1(2): with alpha > 3, both accuracies exceed 0.95 regardless\n"
      "of the imbalance rate.\n\n");
  {
    Table t({"alpha", "gamma", "ACC1 (theory)", "ACC2 (theory)", ">0.95"});
    bool all_high = true;
    for (double alpha : {3.1, 3.5, 4.0, 5.0}) {
      for (double gamma : {1.1, 1.5, 1.9}) {
        auto m = theory::TwoGaussianModel::FromAlphaGamma(alpha, gamma);
        auto s = theory::SolveFixedPoint(m);
        if (!s.ok()) continue;
        const auto acc = theory::ExpectedAccuracies(m, *s);
        const bool high = acc.acc1 > 0.95 && acc.acc2 > 0.95;
        all_high = all_high && high;
        t.AddRow({StrFormat("%.1f", alpha), StrFormat("%.1f", gamma),
                  StrFormat("%.4f", acc.acc1), StrFormat("%.4f", acc.acc2),
                  high ? "yes" : "NO"});
      }
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("All accuracies > 0.95 for alpha > 3: %s (paper: yes)\n",
                all_high ? "yes" : "NO");
  }
  return 0;
}

}  // namespace
}  // namespace openima

int main(int argc, char** argv) { return openima::Run(argc, argv); }
