file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b.dir/bench_fig1b.cc.o"
  "CMakeFiles/bench_fig1b.dir/bench_fig1b.cc.o.d"
  "bench_fig1b"
  "bench_fig1b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
