# Empty dependencies file for bench_theorem1.
# This may be replaced when dependencies are built.
