file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1.dir/bench_theorem1.cc.o"
  "CMakeFiles/bench_theorem1.dir/bench_theorem1.cc.o.d"
  "bench_theorem1"
  "bench_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
