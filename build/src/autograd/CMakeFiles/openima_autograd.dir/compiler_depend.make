# Empty compiler generated dependencies file for openima_autograd.
# This may be replaced when dependencies are built.
