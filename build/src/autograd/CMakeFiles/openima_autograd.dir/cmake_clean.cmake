file(REMOVE_RECURSE
  "CMakeFiles/openima_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/openima_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/openima_autograd.dir/ops.cc.o"
  "CMakeFiles/openima_autograd.dir/ops.cc.o.d"
  "CMakeFiles/openima_autograd.dir/variable.cc.o"
  "CMakeFiles/openima_autograd.dir/variable.cc.o.d"
  "libopenima_autograd.a"
  "libopenima_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
