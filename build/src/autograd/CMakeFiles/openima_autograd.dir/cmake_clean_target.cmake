file(REMOVE_RECURSE
  "libopenima_autograd.a"
)
