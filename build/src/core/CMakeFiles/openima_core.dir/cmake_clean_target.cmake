file(REMOVE_RECURSE
  "libopenima_core.a"
)
