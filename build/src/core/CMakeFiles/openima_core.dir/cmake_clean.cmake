file(REMOVE_RECURSE
  "CMakeFiles/openima_core.dir/clusterer.cc.o"
  "CMakeFiles/openima_core.dir/clusterer.cc.o.d"
  "CMakeFiles/openima_core.dir/encoder_with_head.cc.o"
  "CMakeFiles/openima_core.dir/encoder_with_head.cc.o.d"
  "CMakeFiles/openima_core.dir/novel_count.cc.o"
  "CMakeFiles/openima_core.dir/novel_count.cc.o.d"
  "CMakeFiles/openima_core.dir/openima.cc.o"
  "CMakeFiles/openima_core.dir/openima.cc.o.d"
  "CMakeFiles/openima_core.dir/positive_sets.cc.o"
  "CMakeFiles/openima_core.dir/positive_sets.cc.o.d"
  "CMakeFiles/openima_core.dir/pseudo_labels.cc.o"
  "CMakeFiles/openima_core.dir/pseudo_labels.cc.o.d"
  "libopenima_core.a"
  "libopenima_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
