# Empty compiler generated dependencies file for openima_core.
# This may be replaced when dependencies are built.
