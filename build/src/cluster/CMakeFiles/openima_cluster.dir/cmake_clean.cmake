file(REMOVE_RECURSE
  "CMakeFiles/openima_cluster.dir/constrained_kmeans.cc.o"
  "CMakeFiles/openima_cluster.dir/constrained_kmeans.cc.o.d"
  "CMakeFiles/openima_cluster.dir/gmm.cc.o"
  "CMakeFiles/openima_cluster.dir/gmm.cc.o.d"
  "CMakeFiles/openima_cluster.dir/kmeans.cc.o"
  "CMakeFiles/openima_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/openima_cluster.dir/silhouette.cc.o"
  "CMakeFiles/openima_cluster.dir/silhouette.cc.o.d"
  "libopenima_cluster.a"
  "libopenima_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
