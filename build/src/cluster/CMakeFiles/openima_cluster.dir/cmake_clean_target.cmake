file(REMOVE_RECURSE
  "libopenima_cluster.a"
)
