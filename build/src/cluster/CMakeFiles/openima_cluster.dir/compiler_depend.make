# Empty compiler generated dependencies file for openima_cluster.
# This may be replaced when dependencies are built.
