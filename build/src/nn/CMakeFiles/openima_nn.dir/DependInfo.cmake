
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/openima_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/gat.cc" "src/nn/CMakeFiles/openima_nn.dir/gat.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/gat.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/openima_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/openima_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/openima_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/openima_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/openima_nn.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/openima_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/openima_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/openima_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
