# Empty dependencies file for openima_nn.
# This may be replaced when dependencies are built.
