file(REMOVE_RECURSE
  "CMakeFiles/openima_nn.dir/adam.cc.o"
  "CMakeFiles/openima_nn.dir/adam.cc.o.d"
  "CMakeFiles/openima_nn.dir/gat.cc.o"
  "CMakeFiles/openima_nn.dir/gat.cc.o.d"
  "CMakeFiles/openima_nn.dir/gcn.cc.o"
  "CMakeFiles/openima_nn.dir/gcn.cc.o.d"
  "CMakeFiles/openima_nn.dir/init.cc.o"
  "CMakeFiles/openima_nn.dir/init.cc.o.d"
  "CMakeFiles/openima_nn.dir/linear.cc.o"
  "CMakeFiles/openima_nn.dir/linear.cc.o.d"
  "CMakeFiles/openima_nn.dir/serialization.cc.o"
  "CMakeFiles/openima_nn.dir/serialization.cc.o.d"
  "libopenima_nn.a"
  "libopenima_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
