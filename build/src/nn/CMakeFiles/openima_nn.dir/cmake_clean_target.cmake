file(REMOVE_RECURSE
  "libopenima_nn.a"
)
