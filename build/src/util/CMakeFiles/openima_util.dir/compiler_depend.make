# Empty compiler generated dependencies file for openima_util.
# This may be replaced when dependencies are built.
