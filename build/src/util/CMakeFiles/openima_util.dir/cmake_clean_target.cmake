file(REMOVE_RECURSE
  "libopenima_util.a"
)
