file(REMOVE_RECURSE
  "CMakeFiles/openima_util.dir/flags.cc.o"
  "CMakeFiles/openima_util.dir/flags.cc.o.d"
  "CMakeFiles/openima_util.dir/logging.cc.o"
  "CMakeFiles/openima_util.dir/logging.cc.o.d"
  "CMakeFiles/openima_util.dir/rng.cc.o"
  "CMakeFiles/openima_util.dir/rng.cc.o.d"
  "CMakeFiles/openima_util.dir/status.cc.o"
  "CMakeFiles/openima_util.dir/status.cc.o.d"
  "CMakeFiles/openima_util.dir/string_util.cc.o"
  "CMakeFiles/openima_util.dir/string_util.cc.o.d"
  "CMakeFiles/openima_util.dir/table.cc.o"
  "CMakeFiles/openima_util.dir/table.cc.o.d"
  "CMakeFiles/openima_util.dir/thread_pool.cc.o"
  "CMakeFiles/openima_util.dir/thread_pool.cc.o.d"
  "libopenima_util.a"
  "libopenima_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
