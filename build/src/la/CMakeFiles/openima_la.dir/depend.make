# Empty dependencies file for openima_la.
# This may be replaced when dependencies are built.
