file(REMOVE_RECURSE
  "libopenima_la.a"
)
