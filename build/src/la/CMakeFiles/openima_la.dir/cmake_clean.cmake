file(REMOVE_RECURSE
  "CMakeFiles/openima_la.dir/matrix.cc.o"
  "CMakeFiles/openima_la.dir/matrix.cc.o.d"
  "CMakeFiles/openima_la.dir/matrix_ops.cc.o"
  "CMakeFiles/openima_la.dir/matrix_ops.cc.o.d"
  "libopenima_la.a"
  "libopenima_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
