# Empty compiler generated dependencies file for openima_assign.
# This may be replaced when dependencies are built.
