file(REMOVE_RECURSE
  "CMakeFiles/openima_assign.dir/cluster_alignment.cc.o"
  "CMakeFiles/openima_assign.dir/cluster_alignment.cc.o.d"
  "CMakeFiles/openima_assign.dir/hungarian.cc.o"
  "CMakeFiles/openima_assign.dir/hungarian.cc.o.d"
  "libopenima_assign.a"
  "libopenima_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
