
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/cluster_alignment.cc" "src/assign/CMakeFiles/openima_assign.dir/cluster_alignment.cc.o" "gcc" "src/assign/CMakeFiles/openima_assign.dir/cluster_alignment.cc.o.d"
  "/root/repo/src/assign/hungarian.cc" "src/assign/CMakeFiles/openima_assign.dir/hungarian.cc.o" "gcc" "src/assign/CMakeFiles/openima_assign.dir/hungarian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
