file(REMOVE_RECURSE
  "libopenima_assign.a"
)
