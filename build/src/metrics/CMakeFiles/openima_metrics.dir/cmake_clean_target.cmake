file(REMOVE_RECURSE
  "libopenima_metrics.a"
)
