# Empty compiler generated dependencies file for openima_metrics.
# This may be replaced when dependencies are built.
