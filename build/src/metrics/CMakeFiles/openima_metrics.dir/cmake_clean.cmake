file(REMOVE_RECURSE
  "CMakeFiles/openima_metrics.dir/clustering_accuracy.cc.o"
  "CMakeFiles/openima_metrics.dir/clustering_accuracy.cc.o.d"
  "CMakeFiles/openima_metrics.dir/info_metrics.cc.o"
  "CMakeFiles/openima_metrics.dir/info_metrics.cc.o.d"
  "CMakeFiles/openima_metrics.dir/sc_acc.cc.o"
  "CMakeFiles/openima_metrics.dir/sc_acc.cc.o.d"
  "CMakeFiles/openima_metrics.dir/variance_stats.cc.o"
  "CMakeFiles/openima_metrics.dir/variance_stats.cc.o.d"
  "libopenima_metrics.a"
  "libopenima_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
