
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/clustering_accuracy.cc" "src/metrics/CMakeFiles/openima_metrics.dir/clustering_accuracy.cc.o" "gcc" "src/metrics/CMakeFiles/openima_metrics.dir/clustering_accuracy.cc.o.d"
  "/root/repo/src/metrics/info_metrics.cc" "src/metrics/CMakeFiles/openima_metrics.dir/info_metrics.cc.o" "gcc" "src/metrics/CMakeFiles/openima_metrics.dir/info_metrics.cc.o.d"
  "/root/repo/src/metrics/sc_acc.cc" "src/metrics/CMakeFiles/openima_metrics.dir/sc_acc.cc.o" "gcc" "src/metrics/CMakeFiles/openima_metrics.dir/sc_acc.cc.o.d"
  "/root/repo/src/metrics/variance_stats.cc" "src/metrics/CMakeFiles/openima_metrics.dir/variance_stats.cc.o" "gcc" "src/metrics/CMakeFiles/openima_metrics.dir/variance_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assign/CMakeFiles/openima_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/openima_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
