file(REMOVE_RECURSE
  "CMakeFiles/openima_theory.dir/two_gaussian.cc.o"
  "CMakeFiles/openima_theory.dir/two_gaussian.cc.o.d"
  "libopenima_theory.a"
  "libopenima_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
