
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/two_gaussian.cc" "src/theory/CMakeFiles/openima_theory.dir/two_gaussian.cc.o" "gcc" "src/theory/CMakeFiles/openima_theory.dir/two_gaussian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/openima_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/openima_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
