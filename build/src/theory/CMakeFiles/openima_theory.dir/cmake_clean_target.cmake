file(REMOVE_RECURSE
  "libopenima_theory.a"
)
