# Empty compiler generated dependencies file for openima_theory.
# This may be replaced when dependencies are built.
