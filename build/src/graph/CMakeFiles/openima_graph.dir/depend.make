# Empty dependencies file for openima_graph.
# This may be replaced when dependencies are built.
