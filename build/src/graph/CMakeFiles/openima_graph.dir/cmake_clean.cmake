file(REMOVE_RECURSE
  "CMakeFiles/openima_graph.dir/benchmarks.cc.o"
  "CMakeFiles/openima_graph.dir/benchmarks.cc.o.d"
  "CMakeFiles/openima_graph.dir/dataset.cc.o"
  "CMakeFiles/openima_graph.dir/dataset.cc.o.d"
  "CMakeFiles/openima_graph.dir/graph.cc.o"
  "CMakeFiles/openima_graph.dir/graph.cc.o.d"
  "CMakeFiles/openima_graph.dir/io.cc.o"
  "CMakeFiles/openima_graph.dir/io.cc.o.d"
  "CMakeFiles/openima_graph.dir/splits.cc.o"
  "CMakeFiles/openima_graph.dir/splits.cc.o.d"
  "CMakeFiles/openima_graph.dir/synthetic.cc.o"
  "CMakeFiles/openima_graph.dir/synthetic.cc.o.d"
  "libopenima_graph.a"
  "libopenima_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
