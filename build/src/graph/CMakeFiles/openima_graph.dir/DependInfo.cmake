
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/benchmarks.cc" "src/graph/CMakeFiles/openima_graph.dir/benchmarks.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/benchmarks.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/graph/CMakeFiles/openima_graph.dir/dataset.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/dataset.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/openima_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/openima_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/splits.cc" "src/graph/CMakeFiles/openima_graph.dir/splits.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/splits.cc.o.d"
  "/root/repo/src/graph/synthetic.cc" "src/graph/CMakeFiles/openima_graph.dir/synthetic.cc.o" "gcc" "src/graph/CMakeFiles/openima_graph.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/openima_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
