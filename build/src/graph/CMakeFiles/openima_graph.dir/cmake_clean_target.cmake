file(REMOVE_RECURSE
  "libopenima_graph.a"
)
