file(REMOVE_RECURSE
  "CMakeFiles/openima_eval.dir/experiment.cc.o"
  "CMakeFiles/openima_eval.dir/experiment.cc.o.d"
  "CMakeFiles/openima_eval.dir/method_factory.cc.o"
  "CMakeFiles/openima_eval.dir/method_factory.cc.o.d"
  "libopenima_eval.a"
  "libopenima_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
