# Empty compiler generated dependencies file for openima_eval.
# This may be replaced when dependencies are built.
