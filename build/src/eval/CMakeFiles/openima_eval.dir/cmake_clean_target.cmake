file(REMOVE_RECURSE
  "libopenima_eval.a"
)
