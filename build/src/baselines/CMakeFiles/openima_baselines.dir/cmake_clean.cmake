file(REMOVE_RECURSE
  "CMakeFiles/openima_baselines.dir/cl_ladder.cc.o"
  "CMakeFiles/openima_baselines.dir/cl_ladder.cc.o.d"
  "CMakeFiles/openima_baselines.dir/common.cc.o"
  "CMakeFiles/openima_baselines.dir/common.cc.o.d"
  "CMakeFiles/openima_baselines.dir/oodgat.cc.o"
  "CMakeFiles/openima_baselines.dir/oodgat.cc.o.d"
  "CMakeFiles/openima_baselines.dir/opencon.cc.o"
  "CMakeFiles/openima_baselines.dir/opencon.cc.o.d"
  "CMakeFiles/openima_baselines.dir/openldn.cc.o"
  "CMakeFiles/openima_baselines.dir/openldn.cc.o.d"
  "CMakeFiles/openima_baselines.dir/openwgl.cc.o"
  "CMakeFiles/openima_baselines.dir/openwgl.cc.o.d"
  "CMakeFiles/openima_baselines.dir/orca.cc.o"
  "CMakeFiles/openima_baselines.dir/orca.cc.o.d"
  "CMakeFiles/openima_baselines.dir/simgcd.cc.o"
  "CMakeFiles/openima_baselines.dir/simgcd.cc.o.d"
  "libopenima_baselines.a"
  "libopenima_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
