# Empty dependencies file for openima_baselines.
# This may be replaced when dependencies are built.
