file(REMOVE_RECURSE
  "libopenima_baselines.a"
)
