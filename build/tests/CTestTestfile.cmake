# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/splits_test[1]_include.cmake")
include("/root/repo/build/tests/kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/hungarian_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/openima_integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/info_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_ext_test[1]_include.cmake")
include("/root/repo/build/tests/gcn_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
