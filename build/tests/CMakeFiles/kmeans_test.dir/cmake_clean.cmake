file(REMOVE_RECURSE
  "CMakeFiles/kmeans_test.dir/kmeans_test.cc.o"
  "CMakeFiles/kmeans_test.dir/kmeans_test.cc.o.d"
  "kmeans_test"
  "kmeans_test.pdb"
  "kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
