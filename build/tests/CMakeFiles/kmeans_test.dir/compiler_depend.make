# Empty compiler generated dependencies file for kmeans_test.
# This may be replaced when dependencies are built.
