# Empty compiler generated dependencies file for cluster_ext_test.
# This may be replaced when dependencies are built.
