file(REMOVE_RECURSE
  "CMakeFiles/cluster_ext_test.dir/cluster_ext_test.cc.o"
  "CMakeFiles/cluster_ext_test.dir/cluster_ext_test.cc.o.d"
  "cluster_ext_test"
  "cluster_ext_test.pdb"
  "cluster_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
