
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/core_test.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/openima_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/openima_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/openima_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/openima_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/openima_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/openima_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/openima_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/openima_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/openima_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/openima_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/openima_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/openima_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
