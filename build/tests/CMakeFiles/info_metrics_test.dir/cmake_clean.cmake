file(REMOVE_RECURSE
  "CMakeFiles/info_metrics_test.dir/info_metrics_test.cc.o"
  "CMakeFiles/info_metrics_test.dir/info_metrics_test.cc.o.d"
  "info_metrics_test"
  "info_metrics_test.pdb"
  "info_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
