# Empty dependencies file for info_metrics_test.
# This may be replaced when dependencies are built.
