# Empty dependencies file for splits_test.
# This may be replaced when dependencies are built.
