file(REMOVE_RECURSE
  "CMakeFiles/splits_test.dir/splits_test.cc.o"
  "CMakeFiles/splits_test.dir/splits_test.cc.o.d"
  "splits_test"
  "splits_test.pdb"
  "splits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
