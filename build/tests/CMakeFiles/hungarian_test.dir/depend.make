# Empty dependencies file for hungarian_test.
# This may be replaced when dependencies are built.
