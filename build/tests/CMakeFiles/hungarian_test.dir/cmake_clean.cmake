file(REMOVE_RECURSE
  "CMakeFiles/hungarian_test.dir/hungarian_test.cc.o"
  "CMakeFiles/hungarian_test.dir/hungarian_test.cc.o.d"
  "hungarian_test"
  "hungarian_test.pdb"
  "hungarian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hungarian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
