# Empty compiler generated dependencies file for openima_integration_test.
# This may be replaced when dependencies are built.
