file(REMOVE_RECURSE
  "CMakeFiles/openima_integration_test.dir/openima_integration_test.cc.o"
  "CMakeFiles/openima_integration_test.dir/openima_integration_test.cc.o.d"
  "openima_integration_test"
  "openima_integration_test.pdb"
  "openima_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openima_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
