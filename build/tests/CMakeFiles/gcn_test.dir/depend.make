# Empty dependencies file for gcn_test.
# This may be replaced when dependencies are built.
