file(REMOVE_RECURSE
  "CMakeFiles/gcn_test.dir/gcn_test.cc.o"
  "CMakeFiles/gcn_test.dir/gcn_test.cc.o.d"
  "gcn_test"
  "gcn_test.pdb"
  "gcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
