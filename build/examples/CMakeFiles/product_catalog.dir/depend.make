# Empty dependencies file for product_catalog.
# This may be replaced when dependencies are built.
