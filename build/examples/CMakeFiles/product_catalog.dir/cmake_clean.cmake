file(REMOVE_RECURSE
  "CMakeFiles/product_catalog.dir/product_catalog.cpp.o"
  "CMakeFiles/product_catalog.dir/product_catalog.cpp.o.d"
  "product_catalog"
  "product_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
