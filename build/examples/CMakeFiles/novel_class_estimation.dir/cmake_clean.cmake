file(REMOVE_RECURSE
  "CMakeFiles/novel_class_estimation.dir/novel_class_estimation.cpp.o"
  "CMakeFiles/novel_class_estimation.dir/novel_class_estimation.cpp.o.d"
  "novel_class_estimation"
  "novel_class_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novel_class_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
