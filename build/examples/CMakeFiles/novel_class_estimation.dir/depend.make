# Empty dependencies file for novel_class_estimation.
# This may be replaced when dependencies are built.
