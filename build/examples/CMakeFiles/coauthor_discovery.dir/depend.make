# Empty dependencies file for coauthor_discovery.
# This may be replaced when dependencies are built.
