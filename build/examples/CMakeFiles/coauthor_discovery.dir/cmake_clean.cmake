file(REMOVE_RECURSE
  "CMakeFiles/coauthor_discovery.dir/coauthor_discovery.cpp.o"
  "CMakeFiles/coauthor_discovery.dir/coauthor_discovery.cpp.o.d"
  "coauthor_discovery"
  "coauthor_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coauthor_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
