# Empty dependencies file for save_and_reload.
# This may be replaced when dependencies are built.
