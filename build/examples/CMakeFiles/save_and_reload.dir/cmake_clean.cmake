file(REMOVE_RECURSE
  "CMakeFiles/save_and_reload.dir/save_and_reload.cpp.o"
  "CMakeFiles/save_and_reload.dir/save_and_reload.cpp.o.d"
  "save_and_reload"
  "save_and_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_and_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
