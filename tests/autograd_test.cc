#include <gtest/gtest.h>

#include <cmath>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/la/matrix_ops.h"
#include "src/util/rng.h"

namespace openima::autograd {
namespace {

namespace ops = openima::autograd::ops;

Variable Leaf(const la::Matrix& m) { return Variable::Leaf(m, true); }

la::Matrix RandomMatrix(int rows, int cols, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return la::Matrix::Normal(rows, cols, 0.0f, scale, &rng);
}

/// Random matrix with every entry pushed at least `margin` away from zero —
/// keeps finite differences off the LeakyReLU/ELU kink.
la::Matrix RandomMatrixOffKink(int rows, int cols, uint64_t seed,
                               float margin = 0.05f) {
  la::Matrix m = RandomMatrix(rows, cols, seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    float& v = m.data()[i];
    if (v >= 0.0f && v < margin) v += margin;
    if (v < 0.0f && v > -margin) v -= margin;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Engine mechanics
// ---------------------------------------------------------------------------

TEST(EngineTest, LeafHoldsValueAndGradFlag) {
  Variable v = Leaf(la::Matrix({{1, 2}}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_FALSE(v.HasGrad());
  v.ZeroGrad();
  EXPECT_TRUE(v.HasGrad());
}

TEST(EngineTest, BackwardThroughChain) {
  Variable x = Leaf(la::Matrix({{2.0f}}));
  Variable y = ops::Scale(ops::Mul(x, x), 3.0f);  // 3x^2
  Variable loss = ops::SumAll(y);
  loss.Backward();
  EXPECT_NEAR(x.grad()(0, 0), 12.0f, 1e-5);  // d(3x^2)/dx = 6x = 12
}

TEST(EngineTest, DiamondGraphAccumulatesBothPaths) {
  Variable x = Leaf(la::Matrix({{1.5f}}));
  Variable a = ops::Scale(x, 2.0f);
  Variable b = ops::Scale(x, 3.0f);
  Variable loss = ops::SumAll(ops::Add(a, b));
  loss.Backward();
  EXPECT_NEAR(x.grad()(0, 0), 5.0f, 1e-5);
}

TEST(EngineTest, ReusedNodeAccumulates) {
  Variable x = Leaf(la::Matrix({{2.0f}}));
  Variable y = ops::Mul(x, x);  // x used twice by one op
  ops::SumAll(y).Backward();
  EXPECT_NEAR(x.grad()(0, 0), 4.0f, 1e-5);
}

TEST(EngineTest, ConstantInputsGetNoGrad) {
  Variable c = Variable::Leaf(la::Matrix({{1.0f}}), false);
  Variable x = Leaf(la::Matrix({{2.0f}}));
  Variable loss = ops::SumAll(ops::Mul(c, x));
  loss.Backward();
  EXPECT_FALSE(c.HasGrad());
  EXPECT_TRUE(x.HasGrad());
}

TEST(EngineTest, TwoBackwardsAccumulate) {
  Variable x = Leaf(la::Matrix({{1.0f}}));
  Variable loss = ops::SumAll(ops::Scale(x, 2.0f));
  loss.Backward();
  loss.Backward();
  EXPECT_NEAR(x.grad()(0, 0), 4.0f, 1e-5) << "grads accumulate across calls";
}

// ---------------------------------------------------------------------------
// Forward-value checks
// ---------------------------------------------------------------------------

TEST(ForwardTest, AddSubMulScale) {
  Variable a = Leaf(la::Matrix({{1, 2}}));
  Variable b = Leaf(la::Matrix({{3, 5}}));
  EXPECT_EQ(ops::Add(a, b).value()(0, 1), 7.0f);
  EXPECT_EQ(ops::Sub(b, a).value()(0, 0), 2.0f);
  EXPECT_EQ(ops::Mul(a, b).value()(0, 1), 10.0f);
  EXPECT_EQ(ops::Scale(a, -2.0f).value()(0, 0), -2.0f);
}

TEST(ForwardTest, LeakyReluAndElu) {
  Variable x = Leaf(la::Matrix({{-2.0f, 3.0f}}));
  auto lr = ops::LeakyRelu(x, 0.1f).value();
  EXPECT_NEAR(lr(0, 0), -0.2f, 1e-6);
  EXPECT_EQ(lr(0, 1), 3.0f);
  auto elu = ops::Elu(x).value();
  EXPECT_NEAR(elu(0, 0), std::exp(-2.0f) - 1.0f, 1e-5);
  EXPECT_EQ(elu(0, 1), 3.0f);
}

TEST(ForwardTest, ExpMatchesStd) {
  Variable x = Leaf(la::Matrix({{0.0f, 1.0f, -1.0f}}));
  auto e = ops::Exp(x).value();
  EXPECT_NEAR(e(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(e(0, 1), std::exp(1.0f), 1e-5);
}

TEST(ForwardTest, DropoutEvalIsIdentity) {
  Rng rng(1);
  Variable x = Leaf(RandomMatrix(4, 4, 2));
  Variable y = ops::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.value() == x.value());
}

TEST(ForwardTest, DropoutTrainZeroesAndRescales) {
  Rng rng(1);
  Variable x = Leaf(la::Matrix::Constant(50, 50, 1.0f));
  Variable y = ops::Dropout(x, 0.5f, /*training=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value().data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    zeros += v == 0.0f;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2500.0, 0.5, 0.05);
}

TEST(ForwardTest, TwoDropoutCallsDrawIndependentMasks) {
  Rng rng(1);
  Variable x = Leaf(la::Matrix::Constant(10, 10, 1.0f));
  Variable y1 = ops::Dropout(x, 0.5f, true, &rng);
  Variable y2 = ops::Dropout(x, 0.5f, true, &rng);
  EXPECT_FALSE(y1.value() == y2.value());
}

TEST(ForwardTest, GatherAndConcat) {
  Variable x = Leaf(la::Matrix({{0, 0}, {1, 1}, {2, 2}}));
  Variable g = ops::GatherRows(x, {2, 0});
  EXPECT_EQ(g.value()(0, 0), 2.0f);
  Variable cc = ops::ConcatCols({g, g});
  EXPECT_EQ(cc.cols(), 4);
  Variable cr = ops::ConcatRows({g, g});
  EXPECT_EQ(cr.rows(), 4);
}

TEST(ForwardTest, SoftmaxCrossEntropyMatchesManual) {
  Variable logits = Leaf(la::Matrix({{1.0f, 2.0f, 0.5f}, {0.0f, 0.0f, 0.0f}}));
  Variable loss = ops::SoftmaxCrossEntropy(logits, {1, 2});
  la::Matrix p = la::RowSoftmax(logits.value());
  const double want =
      -(std::log(p(0, 1)) + std::log(p(1, 2))) / 2.0;
  EXPECT_NEAR(loss.value()(0, 0), want, 1e-5);
}

TEST(ForwardTest, SupConWithSinglePositiveIsInfoNce) {
  // With |P(i)| = 1 (twins only), Eq. 7 is the InfoNCE loss; check the
  // value against a manual computation.
  la::Matrix z = RandomMatrix(6, 4, 77);
  la::RowL2NormalizeInPlace(&z);
  Variable zv = Leaf(z);
  std::vector<std::vector<int>> pos(6);
  for (int i = 0; i < 6; ++i) pos[static_cast<size_t>(i)] = {(i + 3) % 6};
  const float tau = 0.5f;
  Variable loss = ops::SupConLoss(zv, pos, tau);

  double want = 0.0;
  for (int i = 0; i < 6; ++i) {
    double denom = 0.0;
    for (int k = 0; k < 6; ++k) {
      if (k == i) continue;
      double dot = 0.0;
      for (int d = 0; d < 4; ++d) dot += static_cast<double>(z(i, d)) * z(k, d);
      denom += std::exp(dot / tau);
    }
    const int j = (i + 3) % 6;
    double dot = 0.0;
    for (int d = 0; d < 4; ++d) dot += static_cast<double>(z(i, d)) * z(j, d);
    want -= dot / tau - std::log(denom);
  }
  want /= 6.0;
  EXPECT_NEAR(loss.value()(0, 0), want, 1e-4);
}

TEST(ForwardTest, MeanRowEntropyUniformIsLogC) {
  Variable logits = Leaf(la::Matrix(4, 5));  // all-zero -> uniform softmax
  Variable h = ops::MeanRowEntropy(logits, {});
  EXPECT_NEAR(h.value()(0, 0), std::log(5.0), 1e-5);
}

TEST(ForwardTest, NegMeanPredictionEntropyBounds) {
  // Uniform predictions give the minimum value -log(C).
  Variable logits = Leaf(la::Matrix(4, 4));
  EXPECT_NEAR(ops::NegMeanPredictionEntropy(logits).value()(0, 0),
              -std::log(4.0), 1e-5);
}

TEST(ForwardTest, GaussianKlZeroAtStandardNormal) {
  Variable mu = Leaf(la::Matrix(3, 2));
  Variable logvar = Leaf(la::Matrix(3, 2));
  EXPECT_NEAR(ops::GaussianKl(mu, logvar).value()(0, 0), 0.0f, 1e-6);
}

// ---------------------------------------------------------------------------
// Gradient checks (the heart of the engine's correctness)
// ---------------------------------------------------------------------------

struct GradCase {
  const char* name;
  std::function<Variable(const std::vector<Variable>&)> fn;
  std::vector<la::Matrix> inputs;
};

class GradCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GradCheckTest, AllOpsPassFiniteDifference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  std::vector<GradCase> cases;

  cases.push_back({"add_mul_sub",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(
                         ops::Mul(ops::Add(v[0], v[1]), ops::Sub(v[0], v[1])));
                   },
                   {RandomMatrix(3, 4, seed), RandomMatrix(3, 4, seed + 1)}});
  cases.push_back({"matmul",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(ops::Matmul(v[0], v[1]));
                   },
                   {RandomMatrix(3, 5, seed + 2), RandomMatrix(5, 2, seed + 3)}});
  cases.push_back({"bias_broadcast",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(
                         ops::Mul(ops::AddRowBroadcast(v[0], v[1]),
                                  ops::AddRowBroadcast(v[0], v[1])));
                   },
                   {RandomMatrix(4, 3, seed + 4), RandomMatrix(1, 3, seed + 5)}});
  cases.push_back({"leaky_relu",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(ops::LeakyRelu(v[0], 0.2f));
                   },
                   {RandomMatrixOffKink(4, 4, seed + 6)}});
  cases.push_back({"elu",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(ops::Elu(v[0]));
                   },
                   {RandomMatrixOffKink(4, 4, seed + 7)}});
  cases.push_back({"exp",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanAll(ops::Exp(v[0]));
                   },
                   {RandomMatrix(3, 3, seed + 8, 0.5f)}});
  cases.push_back({"row_l2_normalize",
                   [](const std::vector<Variable>& v) {
                     Variable z = ops::RowL2Normalize(v[0]);
                     return ops::MeanAll(ops::Mul(z, z));
                   },
                   {RandomMatrix(4, 3, seed + 9) + la::Matrix::Constant(4, 3, 0.5f)}});
  cases.push_back({"gather_concat",
                   [](const std::vector<Variable>& v) {
                     Variable g1 = ops::GatherRows(v[0], {0, 2, 2});
                     Variable g2 = ops::GatherRows(v[0], {1, 1, 3});
                     return ops::MeanAll(
                         ops::Mul(ops::ConcatRows({g1, g2}),
                                  ops::ConcatRows({g2, g1})));
                   },
                   {RandomMatrix(4, 3, seed + 10)}});
  cases.push_back({"concat_cols",
                   [](const std::vector<Variable>& v) {
                     Variable c = ops::ConcatCols({v[0], v[1]});
                     return ops::MeanAll(ops::Mul(c, c));
                   },
                   {RandomMatrix(3, 2, seed + 11), RandomMatrix(3, 4, seed + 12)}});
  cases.push_back({"softmax_ce",
                   [](const std::vector<Variable>& v) {
                     return ops::SoftmaxCrossEntropy(v[0], {0, 2, 1, 2});
                   },
                   {RandomMatrix(4, 3, seed + 13)}});
  cases.push_back({"margin_ce",
                   [](const std::vector<Variable>& v) {
                     return ops::MarginSoftmaxCrossEntropy(
                         v[0], {0, 2, 1, 2}, {0.3f, 0.3f, 0.3f, 0.3f});
                   },
                   {RandomMatrix(4, 3, seed + 14)}});
  {
    la::Matrix targets = la::RowSoftmax(RandomMatrix(4, 3, seed + 15));
    cases.push_back({"soft_ce",
                     [targets](const std::vector<Variable>& v) {
                       return ops::SoftCrossEntropy(v[0], targets);
                     },
                     {RandomMatrix(4, 3, seed + 16)}});
  }
  cases.push_back(
      {"supcon",
       [](const std::vector<Variable>& v) {
         Variable z = ops::RowL2Normalize(v[0]);
         std::vector<std::vector<int>> pos = {{2}, {3, 4}, {0}, {1}, {1}, {0, 2}};
         return ops::SupConLoss(z, pos, 0.7f);
       },
       {RandomMatrix(6, 4, seed + 17) + la::Matrix::Constant(6, 4, 0.3f)}});
  cases.push_back({"pairwise_dot_bce",
                   [](const std::vector<Variable>& v) {
                     std::vector<ops::Pair> pairs = {
                         {0, 1, 1.0f}, {2, 3, 0.0f}, {1, 3, 1.0f}};
                     return ops::PairwiseDotBce(v[0], pairs);
                   },
                   {RandomMatrix(4, 3, seed + 18)}});
  cases.push_back({"neg_mean_pred_entropy",
                   [](const std::vector<Variable>& v) {
                     return ops::NegMeanPredictionEntropy(v[0]);
                   },
                   {RandomMatrix(5, 4, seed + 19)}});
  cases.push_back({"mean_row_entropy",
                   [](const std::vector<Variable>& v) {
                     return ops::MeanRowEntropy(v[0], {0, 2});
                   },
                   {RandomMatrix(4, 3, seed + 20)}});
  cases.push_back({"gaussian_kl",
                   [](const std::vector<Variable>& v) {
                     return ops::GaussianKl(v[0], v[1]);
                   },
                   {RandomMatrix(3, 4, seed + 21, 0.5f),
                    RandomMatrix(3, 4, seed + 22, 0.5f)}});
  {
    la::Matrix target = RandomMatrix(3, 4, seed + 23);
    cases.push_back({"mse",
                     [target](const std::vector<Variable>& v) {
                       return ops::MseLoss(v[0], target);
                     },
                     {RandomMatrix(3, 4, seed + 24)}});
  }

  for (auto& c : cases) {
    std::vector<Variable> leaves;
    leaves.reserve(c.inputs.size());
    for (auto& m : c.inputs) leaves.push_back(Leaf(m));
    GradCheckResult result = CheckGradients(c.fn, &leaves);
    EXPECT_TRUE(result.ok) << c.name << ": " << result.first_failure
                           << " (max err " << result.max_abs_error << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace openima::autograd
