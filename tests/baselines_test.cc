#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "src/baselines/cl_ladder.h"
#include "src/baselines/common.h"
#include "src/baselines/oodgat.h"
#include "src/baselines/opencon.h"
#include "src/baselines/openldn.h"
#include "src/baselines/openwgl.h"
#include "src/baselines/orca.h"
#include "src/baselines/simgcd.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/matrix_ops.h"
#include "src/metrics/clustering_accuracy.h"

namespace openima::baselines {
namespace {

struct Fixture {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

Fixture MakeFixture(uint64_t seed = 1) {
  graph::SbmConfig c;
  c.num_nodes = 200;
  c.num_classes = 4;
  c.feature_dim = 10;
  c.avg_degree = 10.0;
  c.homophily = 0.85;
  c.feature_noise = 1.2;
  auto ds = graph::GenerateSbm(c, seed, "baseline_test");
  EXPECT_TRUE(ds.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 12;
  so.val_per_class = 6;
  auto split = graph::MakeOpenWorldSplit(*ds, so, seed + 1);
  EXPECT_TRUE(split.ok());
  return {std::move(ds).value(), std::move(split).value()};
}

BaselineConfig SmallConfig(const Fixture& fx, int epochs = 6) {
  BaselineConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = epochs;
  config.batch_size = 256;
  config.lr = 5e-3f;
  return config;
}

std::vector<int> Gather(const std::vector<int>& values,
                        const std::vector<int>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (int v : nodes) out.push_back(values[static_cast<size_t>(v)]);
  return out;
}

double TestAccuracy(const Fixture& fx, const std::vector<int>& preds) {
  auto acc = metrics::EvaluateOpenWorld(
      Gather(preds, fx.split.test_nodes),
      Gather(fx.split.remapped_labels, fx.split.test_nodes),
      fx.split.num_seen, fx.split.num_total_classes());
  EXPECT_TRUE(acc.ok());
  return acc->all;
}

/// Shared smoke-check for any classifier: trains, predicts ids for all
/// nodes, lands above chance on the easy fixture.
void CheckClassifier(core::OpenWorldClassifier* model, const Fixture& fx,
                     double min_accuracy = 0.3) {
  ASSERT_TRUE(model->Train(fx.dataset, fx.split).ok()) << model->name();
  auto preds = model->Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok()) << model->name();
  ASSERT_EQ(preds->size(), static_cast<size_t>(fx.dataset.num_nodes()));
  for (int p : *preds) EXPECT_GE(p, 0);
  la::Matrix emb = model->Embeddings(fx.dataset);
  EXPECT_EQ(emb.rows(), fx.dataset.num_nodes());
  const double acc = TestAccuracy(fx, *preds);
  EXPECT_GT(acc, min_accuracy) << model->name() << " accuracy " << acc;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

TEST(CommonTest, NearestNeighborPairsFindsMostSimilar) {
  la::Matrix z({{1, 0}, {0.99f, 0.1f}, {0, 1}});
  la::RowL2NormalizeInPlace(&z);
  auto pairs = NearestNeighborPairs(z, {0, 1, 2});
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].j, 1);
  EXPECT_EQ(pairs[1].j, 0);
  EXPECT_EQ(pairs[0].target, 1.0f);
}

TEST(CommonTest, ShuffledBlocksPartitionRange) {
  Rng rng(1);
  auto blocks = ShuffledBlocks(25, 10, &rng);
  std::set<int> seen;
  for (const auto& b : blocks) {
    EXPECT_GE(b.size(), 2u);
    for (int v : b) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_GE(seen.size(), 24u);  // last undersized block may be dropped
}

TEST(CommonTest, OodSplitSeparatesBimodalScores) {
  std::vector<double> scores;
  for (int i = 0; i < 20; ++i) scores.push_back(0.1 + 0.01 * i);
  for (int i = 0; i < 10; ++i) scores.push_back(2.0 + 0.01 * i);
  auto ood = OodSplitByScore(scores);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(ood[static_cast<size_t>(i)]);
  for (int i = 20; i < 30; ++i) EXPECT_TRUE(ood[static_cast<size_t>(i)]);
}

TEST(CommonTest, OodSplitConstantScoresAllInlier) {
  auto ood = OodSplitByScore(std::vector<double>(10, 0.5));
  for (bool b : ood) EXPECT_FALSE(b);
}

TEST(CommonTest, ClusterDetectedOodAssignsNovelIds) {
  Rng rng(2);
  la::Matrix emb(6, 2);
  for (int i = 3; i < 6; ++i) emb(i, 0) = 10.0f + i;
  std::vector<int> seen_pred = {0, 1, 0, 1, 0, 1};
  std::vector<bool> ood = {false, false, false, true, true, true};
  auto preds = ClusterDetectedOod(emb, seen_pred, ood, /*num_seen=*/2,
                                  /*num_novel=*/2, &rng);
  ASSERT_TRUE(preds.ok());
  for (int i = 0; i < 3; ++i) EXPECT_LT((*preds)[static_cast<size_t>(i)], 2);
  for (int i = 3; i < 6; ++i) EXPECT_GE((*preds)[static_cast<size_t>(i)], 2);
}

TEST(CommonTest, ClusterDetectedOodFewNodesLumped) {
  Rng rng(3);
  la::Matrix emb(3, 2);
  std::vector<int> seen_pred = {0, 0, 1};
  std::vector<bool> ood = {false, true, false};
  auto preds = ClusterDetectedOod(emb, seen_pred, ood, 2, 3, &rng);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ((*preds)[1], 2);
}

// ---------------------------------------------------------------------------
// End-to-end baselines
// ---------------------------------------------------------------------------

TEST(OrcaTest, TrainsAndPredicts) {
  Fixture fx = MakeFixture(10);
  OrcaClassifier model(SmallConfig(fx), OrcaOptions{}, fx.dataset.feature_dim(),
                       42);
  EXPECT_EQ(model.name(), "ORCA");
  CheckClassifier(&model, fx);
}

TEST(OrcaTest, ZeroMarginVariantIsOrcaZm) {
  Fixture fx = MakeFixture(11);
  OrcaOptions options;
  options.margin_scale = 0.0f;
  OrcaClassifier model(SmallConfig(fx), options, fx.dataset.feature_dim(), 42);
  EXPECT_EQ(model.name(), "ORCA-ZM");
  CheckClassifier(&model, fx);
}

TEST(SimGcdTest, TrainsAndPredicts) {
  Fixture fx = MakeFixture(12);
  SimGcdClassifier model(SmallConfig(fx), SimGcdOptions{},
                         fx.dataset.feature_dim(), 42);
  CheckClassifier(&model, fx);
}

TEST(OpenLdnTest, TrainsAndPredicts) {
  Fixture fx = MakeFixture(13);
  OpenLdnOptions options;
  options.warmup_epochs = 2;
  OpenLdnClassifier model(SmallConfig(fx), options, fx.dataset.feature_dim(),
                          42);
  CheckClassifier(&model, fx);
}

TEST(OpenConTest, TrainsAndPredictsWithPrototypes) {
  Fixture fx = MakeFixture(14);
  OpenConClassifier model(SmallConfig(fx), OpenConOptions{},
                          fx.dataset.feature_dim(), 42);
  CheckClassifier(&model, fx);
}

TEST(OpenConTest, TwoStageVariantUsesKMeans) {
  Fixture fx = MakeFixture(15);
  OpenConOptions options;
  options.two_stage_predict = true;
  OpenConClassifier model(SmallConfig(fx), options, fx.dataset.feature_dim(),
                          42);
  EXPECT_EQ(model.name(), "OpenCon-2stage");
  CheckClassifier(&model, fx);
}

TEST(OodGatTest, DetectsAndClustersNovelNodes) {
  Fixture fx = MakeFixture(16);
  OodGatClassifier model(SmallConfig(fx), OodGatOptions{},
                         fx.dataset.feature_dim(), 42);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  auto preds = model.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok());
  // Some nodes must be assigned novel ids (>= num_seen).
  int novel_assigned = 0;
  for (int p : *preds) novel_assigned += p >= fx.split.num_seen;
  EXPECT_GT(novel_assigned, 0);
  EXPECT_GT(TestAccuracy(fx, *preds), 0.25);
}

TEST(OpenWglTest, VariationalPipelineRuns) {
  Fixture fx = MakeFixture(17);
  OpenWglClassifier model(SmallConfig(fx), OpenWglOptions{},
                          fx.dataset.feature_dim(), 42);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  auto preds = model.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok());
  int novel_assigned = 0;
  for (int p : *preds) novel_assigned += p >= fx.split.num_seen;
  EXPECT_GT(novel_assigned, 0);
}

// ---------------------------------------------------------------------------
// CL ladder
// ---------------------------------------------------------------------------

TEST(ClLadderTest, VariantSwitchesApplyCorrectly) {
  core::OpenImaConfig base;
  auto infonce = ApplyClVariant(base, ClVariant::kInfoNce);
  EXPECT_FALSE(infonce.use_ce);
  EXPECT_FALSE(infonce.use_pseudo_labels);
  EXPECT_FALSE(infonce.use_manual_positives);
  EXPECT_FALSE(infonce.use_bpcl_logit);
  auto supcon = ApplyClVariant(base, ClVariant::kInfoNceSupCon);
  EXPECT_TRUE(supcon.use_manual_positives);
  EXPECT_FALSE(supcon.use_ce);
  auto ce = ApplyClVariant(base, ClVariant::kInfoNceSupConCe);
  EXPECT_TRUE(ce.use_ce);
  auto full = ApplyClVariant(base, ClVariant::kOpenIma);
  EXPECT_TRUE(full.use_pseudo_labels);
  EXPECT_TRUE(full.use_bpcl_logit);
}

TEST(ClLadderTest, NamesMatchPaper) {
  EXPECT_EQ(ClVariantName(ClVariant::kInfoNce), "InfoNCE");
  EXPECT_EQ(ClVariantName(ClVariant::kInfoNceSupCon), "InfoNCE+SupCon");
  EXPECT_EQ(ClVariantName(ClVariant::kInfoNceSupConCe), "InfoNCE+SupCon+CE");
  EXPECT_EQ(ClVariantName(ClVariant::kOpenIma), "OpenIMA");
}

TEST(ClLadderTest, InfoNceVariantTrains) {
  Fixture fx = MakeFixture(18);
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = 5;
  config.lr = 5e-3f;
  ClLadderClassifier model(config, ClVariant::kInfoNce,
                           fx.dataset.feature_dim(), 42);
  CheckClassifier(&model, fx);
}

}  // namespace
}  // namespace openima::baselines
