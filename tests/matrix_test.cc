#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/la/matrix.h"
#include "src/la/matrix_ops.h"
#include "src/util/rng.h"

namespace openima::la {
namespace {

// ---------------------------------------------------------------------------
// Matrix basics
// ---------------------------------------------------------------------------

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, InitializerList) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.At(1, 2), 6.0f);
}

TEST(MatrixTest, IdentityAndConstant) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0f);
  EXPECT_EQ(id(0, 1), 0.0f);
  Matrix c = Matrix::Constant(2, 2, 7.0f);
  EXPECT_EQ(c(1, 1), 7.0f);
}

TEST(MatrixTest, ElementwiseArithmetic) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{10, 20}, {30, 40}});
  Matrix sum = a + b;
  EXPECT_EQ(sum(1, 1), 44.0f);
  Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), 9.0f);
  Matrix scaled = a * 2.0f;
  EXPECT_EQ(scaled(1, 0), 6.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a(0, 1), 12.0f);
}

TEST(MatrixTest, HadamardInPlace) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{2, 2}, {2, 2}});
  a.HadamardInPlace(b);
  EXPECT_EQ(a(1, 1), 8.0f);
}

TEST(MatrixTest, Transposed) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6.0f);
  EXPECT_TRUE(t.Transposed() == a);
}

TEST(MatrixTest, Reductions) {
  Matrix a({{1, 2}, {3, -4}});
  EXPECT_DOUBLE_EQ(a.Sum(), 2.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.5);
  EXPECT_FLOAT_EQ(a.MaxAbs(), 4.0f);
  EXPECT_NEAR(a.FrobeniusNorm(), std::sqrt(1 + 4 + 9 + 16.0), 1e-6);
}

TEST(MatrixTest, AllCloseRespectsTolerance) {
  Matrix a({{1.0f, 2.0f}});
  Matrix b({{1.005f, 2.0f}});
  EXPECT_TRUE(AllClose(a, b, 0.01f));
  EXPECT_FALSE(AllClose(a, b, 0.001f));
  EXPECT_FALSE(AllClose(a, Matrix(2, 1), 1.0f)) << "shape mismatch";
}

TEST(MatrixTest, RandomFactoriesDeterministic) {
  Rng r1(5), r2(5);
  Matrix a = Matrix::Normal(4, 4, 0.0f, 1.0f, &r1);
  Matrix b = Matrix::Normal(4, 4, 0.0f, 1.0f, &r2);
  EXPECT_TRUE(a == b);
  Rng r3(5);
  Matrix u = Matrix::Uniform(8, 8, -1.0f, 1.0f, &r3);
  EXPECT_LE(u.MaxAbs(), 1.0f);
}

// ---------------------------------------------------------------------------
// GEMM family, parameterized over shapes
// ---------------------------------------------------------------------------

class MatmulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

Matrix NaiveMatmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(i, k)) * b(k, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST_P(MatmulShapeTest, MatmulMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  Matrix a = Matrix::Normal(m, k, 0.0f, 1.0f, &rng);
  Matrix b = Matrix::Normal(k, n, 0.0f, 1.0f, &rng);
  EXPECT_TRUE(AllClose(Matmul(a, b), NaiveMatmul(a, b), 1e-3f));
}

TEST_P(MatmulShapeTest, MatmulTnMatchesTransposedNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n));
  Matrix a = Matrix::Normal(k, m, 0.0f, 1.0f, &rng);  // will be transposed
  Matrix b = Matrix::Normal(k, n, 0.0f, 1.0f, &rng);
  EXPECT_TRUE(AllClose(MatmulTN(a, b), NaiveMatmul(a.Transposed(), b), 1e-3f));
}

TEST_P(MatmulShapeTest, MatmulNtMatchesTransposedNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 3 + k * 5 + n * 7));
  Matrix a = Matrix::Normal(m, k, 0.0f, 1.0f, &rng);
  Matrix b = Matrix::Normal(n, k, 0.0f, 1.0f, &rng);
  EXPECT_TRUE(AllClose(MatmulNT(a, b), NaiveMatmul(a, b.Transposed()), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 5), std::make_tuple(7, 8, 3),
                      std::make_tuple(16, 16, 16), std::make_tuple(33, 17, 9),
                      std::make_tuple(1, 64, 1), std::make_tuple(12, 5, 40)));

TEST(MatmulTest, AccumulateAddsIntoExisting) {
  Matrix a({{1, 0}, {0, 1}});
  Matrix b({{2, 3}, {4, 5}});
  Matrix c = Matrix::Constant(2, 2, 1.0f);
  MatmulAccumulate(a, b, 2.0f, &c);
  EXPECT_EQ(c(0, 0), 5.0f);  // 1 + 2*2
  EXPECT_EQ(c(1, 1), 11.0f);
}

// ---------------------------------------------------------------------------
// Softmax / normalization
// ---------------------------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(3);
  Matrix logits = Matrix::Normal(10, 7, 0.0f, 5.0f, &rng);
  Matrix p = RowSoftmax(logits);
  for (int i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p(i, j), 0.0f);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Matrix logits({{1000.0f, 1001.0f}});
  Matrix p = RowSoftmax(logits);
  EXPECT_NEAR(p(0, 1), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5);
  EXPECT_FALSE(std::isnan(p(0, 0)));
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Matrix logits = Matrix::Normal(6, 5, 0.0f, 2.0f, &rng);
  Matrix p = RowSoftmax(logits);
  Matrix lp = RowLogSoftmax(logits);
  for (int i = 0; i < p.rows(); ++i) {
    for (int j = 0; j < p.cols(); ++j) {
      EXPECT_NEAR(lp(i, j), std::log(p(i, j)), 1e-4);
    }
  }
}

TEST(NormalizeTest, RowL2NormalizeMakesUnitRows) {
  Rng rng(5);
  Matrix m = Matrix::Normal(8, 6, 1.0f, 2.0f, &rng);
  Matrix norms = RowL2NormalizeInPlace(&m);
  for (int i = 0; i < m.rows(); ++i) {
    double sq = 0.0;
    for (int j = 0; j < m.cols(); ++j) sq += static_cast<double>(m(i, j)) * m(i, j);
    EXPECT_NEAR(sq, 1.0, 1e-5);
    EXPECT_GT(norms(i, 0), 0.0f);
  }
}

TEST(NormalizeTest, ZeroRowLeftUntouched) {
  Matrix m(2, 3);
  m(1, 0) = 3.0f;
  RowL2NormalizeInPlace(&m);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_NEAR(m(1, 0), 1.0f, 1e-6);
}

TEST(NormalizeTest, RowL2NormsMatchDefinition) {
  Matrix m({{3, 4}, {0, 0}});
  Matrix norms = RowL2Norms(m);
  EXPECT_NEAR(norms(0, 0), 5.0f, 1e-6);
  EXPECT_EQ(norms(1, 0), 0.0f);
}

// ---------------------------------------------------------------------------
// Row utilities
// ---------------------------------------------------------------------------

TEST(RowOpsTest, ArgmaxPicksFirstOnTies) {
  Matrix m({{1, 3, 3}, {5, 2, 1}});
  auto am = RowArgmax(m);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(RowOpsTest, RowMaxAndSums) {
  Matrix m({{1, -2}, {0, 4}});
  auto mx = RowMax(m);
  EXPECT_EQ(mx[0], 1.0f);
  EXPECT_EQ(mx[1], 4.0f);
  Matrix sums = RowSums(m);
  EXPECT_EQ(sums(0, 0), -1.0f);
  EXPECT_EQ(sums(1, 0), 4.0f);
}

TEST(RowOpsTest, ColMeans) {
  Matrix m({{1, 2}, {3, 6}});
  Matrix means = ColMeans(m);
  EXPECT_EQ(means(0, 0), 2.0f);
  EXPECT_EQ(means(0, 1), 4.0f);
}

TEST(RowOpsTest, GatherRowsSelectsInOrder) {
  Matrix m({{0, 0}, {1, 1}, {2, 2}});
  Matrix g = GatherRows(m, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g(0, 0), 2.0f);
  EXPECT_EQ(g(1, 0), 0.0f);
  EXPECT_EQ(g(2, 1), 2.0f);
}

TEST(RowOpsTest, VStackConcatenates) {
  Matrix a({{1, 1}});
  Matrix b({{2, 2}, {3, 3}});
  Matrix v = VStack(a, b);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v(2, 0), 3.0f);
  EXPECT_TRUE(VStack(Matrix(0, 0), b) == b);
}

// ---------------------------------------------------------------------------
// Pairwise distances
// ---------------------------------------------------------------------------

TEST(PairwiseDistanceTest, MatchesNaive) {
  Rng rng(9);
  Matrix x = Matrix::Normal(12, 5, 0.0f, 2.0f, &rng);
  Matrix c = Matrix::Normal(4, 5, 0.0f, 2.0f, &rng);
  Matrix d2 = PairwiseSquaredDistances(x, c);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < c.rows(); ++j) {
      double want = 0.0;
      for (int k = 0; k < 5; ++k) {
        const double diff = static_cast<double>(x(i, k)) - c(j, k);
        want += diff * diff;
      }
      EXPECT_NEAR(d2(i, j), want, 1e-2);
    }
  }
}

TEST(PairwiseDistanceTest, SelfDistanceIsZeroAndNonNegative) {
  Rng rng(10);
  Matrix x = Matrix::Normal(6, 3, 10.0f, 0.01f, &rng);  // cancellation-prone
  Matrix d2 = PairwiseSquaredDistances(x, x);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(d2(i, i), 0.0f, 1e-3);
    for (int j = 0; j < 6; ++j) EXPECT_GE(d2(i, j), 0.0f);
  }
}

}  // namespace
}  // namespace openima::la
