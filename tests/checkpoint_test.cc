// Versioned checkpoint container (src/io/checkpoint.h) and model-level
// save/load (OpenImaModel::SaveCheckpoint / LoadCheckpoint): byte-level
// round trips, the full corruption matrix (every broken file must surface a
// descriptive Status, never a crash), and stop-save-resume bit-identity
// against an uninterrupted run for the serial, sampled, and data-parallel
// trainers. The telemetry-byte-equality half of the resume contract runs as
// the checkpoint_resume_* fixtures in examples/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/openima.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/io/checkpoint.h"

namespace openima {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- container level ------------------------------------------------------

TEST(ByteCodecTest, ScalarsRoundTrip) {
  io::ByteSink sink;
  sink.PutU8(0xab);
  sink.PutU32(0xdeadbeefu);
  sink.PutU64(0x0123456789abcdefULL);
  sink.PutI32(-7);
  sink.PutI64(-1234567890123LL);
  sink.PutF32(3.25f);
  sink.PutF64(-2.718281828459045);
  sink.PutString("hello checkpoint");

  io::ByteSource src(sink.bytes().data(), sink.bytes().size(), "test");
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  std::string s;
  ASSERT_TRUE(src.ReadU8(&u8).ok());
  ASSERT_TRUE(src.ReadU32(&u32).ok());
  ASSERT_TRUE(src.ReadU64(&u64).ok());
  ASSERT_TRUE(src.ReadI32(&i32).ok());
  ASSERT_TRUE(src.ReadI64(&i64).ok());
  ASSERT_TRUE(src.ReadF32(&f32).ok());
  ASSERT_TRUE(src.ReadF64(&f64).ok());
  ASSERT_TRUE(src.ReadString(&s).ok());
  EXPECT_TRUE(src.ExpectEnd().ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -2.718281828459045);
  EXPECT_EQ(s, "hello checkpoint");
}

TEST(ByteCodecTest, LittleEndianByConstruction) {
  io::ByteSink sink;
  sink.PutU32(0x01020304u);
  const std::string& b = sink.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[1]), 0x03);
  EXPECT_EQ(static_cast<uint8_t>(b[2]), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);
}

TEST(ByteCodecTest, MatrixAndVectorRoundTripBitIdentical) {
  la::Matrix m(3, 4);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(i) * 0.37f - 1.0f;
  }
  io::ByteSink sink;
  io::WriteMatrix(&sink, m);
  io::WriteI32Vector(&sink, {5, -1, 0, 1 << 30});

  io::ByteSource src(sink.bytes().data(), sink.bytes().size(), "test");
  la::Matrix back;
  std::vector<int> v;
  ASSERT_TRUE(io::ReadMatrix(&src, &back).ok());
  ASSERT_TRUE(io::ReadI32Vector(&src, &v).ok());
  EXPECT_TRUE(src.ExpectEnd().ok());
  ASSERT_EQ(back.rows(), 3);
  ASSERT_EQ(back.cols(), 4);
  EXPECT_EQ(std::memcmp(back.data(), m.data(), sizeof(float) * m.size()), 0);
  EXPECT_EQ(v, (std::vector<int>{5, -1, 0, 1 << 30}));
}

TEST(ByteCodecTest, TruncatedReadReturnsStatus) {
  io::ByteSink sink;
  sink.PutU32(7);
  io::ByteSource src(sink.bytes().data(), 2, "short-section");
  uint32_t out;
  Status s = src.ReadU32(&out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("short-section"), std::string::npos);
}

TEST(ByteCodecTest, TrailingBytesAreCorruption) {
  io::ByteSink sink;
  sink.PutU32(7);
  sink.PutU32(9);
  io::ByteSource src(sink.bytes().data(), sink.bytes().size(), "sec");
  uint32_t out;
  ASSERT_TRUE(src.ReadU32(&out).ok());
  Status s = src.ExpectEnd();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("section-length mismatch"), std::string::npos);
}

TEST(ByteCodecTest, DtypeMismatchIsDescriptive) {
  io::ByteSink sink;
  io::WriteI32Vector(&sink, {1, 2, 3});
  io::ByteSource src(sink.bytes().data(), sink.bytes().size(), "sec");
  la::Matrix m;
  Status s = io::ReadMatrix(&src, &m);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dtype mismatch"), std::string::npos);
}

std::string WriteTwoSectionFile(const char* name) {
  io::ByteSink a;
  a.PutU64(42);
  a.PutString("alpha payload");
  io::ByteSink b;
  la::Matrix m(2, 2, 1.5f);
  io::WriteMatrix(&b, m);
  io::CheckpointWriter writer;
  EXPECT_TRUE(writer.AddSection("alpha", a).ok());
  EXPECT_TRUE(writer.AddSection("beta", b).ok());
  const std::string path = TempPath(name);
  EXPECT_TRUE(writer.Finish(path).ok());
  return path;
}

TEST(CheckpointContainerTest, RoundTrip) {
  const std::string path = WriteTwoSectionFile("container_roundtrip.ckpt");
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->HasSection("alpha"));
  EXPECT_TRUE(reader->HasSection("beta"));
  EXPECT_FALSE(reader->HasSection("gamma"));
  EXPECT_EQ(reader->SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));

  auto src = reader->Section("alpha");
  ASSERT_TRUE(src.ok());
  uint64_t u;
  std::string s;
  ASSERT_TRUE(src->ReadU64(&u).ok());
  ASSERT_TRUE(src->ReadString(&s).ok());
  EXPECT_TRUE(src->ExpectEnd().ok());
  EXPECT_EQ(u, 42u);
  EXPECT_EQ(s, "alpha payload");

  auto bsrc = reader->Section("beta");
  ASSERT_TRUE(bsrc.ok());
  la::Matrix m;
  ASSERT_TRUE(io::ReadMatrix(&*bsrc, &m).ok());
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m(1, 1), 1.5f);
}

TEST(CheckpointContainerTest, DuplicateAndBadSectionNamesRejected) {
  io::CheckpointWriter writer;
  io::ByteSink payload;
  payload.PutU8(1);
  ASSERT_TRUE(writer.AddSection("meta", payload).ok());
  EXPECT_FALSE(writer.AddSection("meta", payload).ok());
  EXPECT_FALSE(writer.AddSection("", payload).ok());
  EXPECT_FALSE(writer.AddSection(std::string(65, 'x'), payload).ok());
}

TEST(CheckpointContainerTest, MissingFileFails) {
  auto reader = io::CheckpointReader::Open("/nonexistent/nope.ckpt");
  EXPECT_FALSE(reader.ok());
}

TEST(CheckpointContainerTest, RejectsWrongMagic) {
  const std::string path = WriteTwoSectionFile("bad_magic.ckpt");
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsWrongVersion) {
  const std::string path = WriteTwoSectionFile("bad_version.ckpt");
  std::string bytes = ReadFileBytes(path);
  bytes[8] = static_cast<char>(99);  // u32 version little-endian low byte
  WriteFileBytes(path, bytes);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsEveryTruncationLength) {
  const std::string path = WriteTwoSectionFile("trunc_base.ckpt");
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 24u);
  // Cut in the header, in the section table, and inside each payload: every
  // prefix must load as an error, never crash or succeed.
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    const std::string trunc_path = TempPath("truncated.ckpt");
    WriteFileBytes(trunc_path, bytes.substr(0, cut));
    auto reader = io::CheckpointReader::Open(trunc_path);
    EXPECT_FALSE(reader.ok()) << "truncation at " << cut << " bytes loaded";
  }
}

TEST(CheckpointContainerTest, RejectsPayloadByteFlip) {
  const std::string path = WriteTwoSectionFile("flip_base.ckpt");
  std::string bytes = ReadFileBytes(path);
  // Flip the last byte (inside the final section's payload).
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  WriteFileBytes(path, bytes);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("checksum"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsSectionEscapingFile) {
  const std::string path = WriteTwoSectionFile("escape_base.ckpt");
  std::string bytes = ReadFileBytes(path);
  // The first table entry starts at offset 24: u32 name_len, name, then
  // u64 offset / u64 length / u64 checksum. Corrupt the length field.
  const size_t len_pos = 24 + 4 + 5 /* "alpha" */ + 8;
  bytes[len_pos + 3] = static_cast<char>(0x7f);  // blow up the u64 length
  WriteFileBytes(path, bytes);
  auto reader = io::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("escapes"), std::string::npos)
      << reader.status().ToString();
}

// ---- model level ----------------------------------------------------------

struct Fixture {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

Fixture SmallProblem() {
  graph::SbmConfig c;
  c.num_nodes = 120;
  c.num_classes = 4;
  c.feature_dim = 8;
  c.avg_degree = 8.0;
  c.homophily = 0.8;
  auto ds = graph::GenerateSbm(c, /*seed=*/5, "checkpoint_test");
  EXPECT_TRUE(ds.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 8;
  so.val_per_class = 4;
  auto split = graph::MakeOpenWorldSplit(*ds, so, /*seed=*/3);
  EXPECT_TRUE(split.ok());
  return Fixture{std::move(*ds), std::move(*split)};
}

core::OpenImaConfig SmallConfig(const Fixture& fx, int epochs) {
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = epochs;
  config.pseudo_warmup_epochs = 2;
  return config;
}

void ExpectModelsBitIdentical(const core::OpenImaModel& a,
                              const core::OpenImaModel& b) {
  const auto& pa = a.model().parameters();
  const auto& pb = b.model().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t t = 0; t < pa.size(); ++t) {
    ASSERT_EQ(pa[t].rows(), pb[t].rows());
    ASSERT_EQ(pa[t].cols(), pb[t].cols());
    EXPECT_EQ(std::memcmp(pa[t].value().data(), pb[t].value().data(),
                          sizeof(float) * pa[t].value().size()),
              0)
        << "parameter " << t << " differs";
  }
}

// Stop at `stop`, save, load into a fresh model, train the rest — the
// result must be bit-identical (parameters AND predictions) to training
// without the interruption.
void CheckResumeBitIdentity(core::OpenImaConfig config, const char* ckpt_name,
                            int stop) {
  Fixture fx = SmallProblem();
  const int epochs = config.epochs;

  core::OpenImaModel uninterrupted(config, fx.dataset.feature_dim(),
                                   /*seed=*/11);
  ASSERT_TRUE(uninterrupted.Train(fx.dataset, fx.split).ok());

  const std::string path = TempPath(ckpt_name);
  {
    core::OpenImaConfig partial = config;
    partial.stop_after_epochs = stop;
    core::OpenImaModel first_half(partial, fx.dataset.feature_dim(),
                                  /*seed=*/11);
    ASSERT_TRUE(first_half.Train(fx.dataset, fx.split).ok());
    EXPECT_EQ(first_half.epochs_done(), stop);
    ASSERT_TRUE(first_half.SaveCheckpoint(path).ok());
  }

  core::OpenImaModel resumed(config, fx.dataset.feature_dim(), /*seed=*/11);
  Status loaded = resumed.LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_EQ(resumed.epochs_done(), stop);
  ASSERT_TRUE(resumed.Train(fx.dataset, fx.split).ok());
  EXPECT_EQ(resumed.epochs_done(), epochs);

  ExpectModelsBitIdentical(uninterrupted, resumed);
  auto preds_a = uninterrupted.Predict(fx.dataset, fx.split);
  auto preds_b = resumed.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds_a.ok());
  ASSERT_TRUE(preds_b.ok());
  EXPECT_EQ(*preds_a, *preds_b);
}

TEST(ModelCheckpointTest, SaveLoadRestoresParametersBitIdentically) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 4);
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("model_roundtrip.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  core::OpenImaModel loaded(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(loaded.LoadCheckpoint(path).ok());
  EXPECT_EQ(loaded.epochs_done(), 4);
  ExpectModelsBitIdentical(model, loaded);
}

TEST(ModelCheckpointTest, ResumeMatchesUninterruptedSerial) {
  Fixture fx = SmallProblem();
  CheckResumeBitIdentity(SmallConfig(fx, 6), "resume_serial.ckpt",
                         /*stop=*/3);
}

TEST(ModelCheckpointTest, ResumeMatchesUninterruptedSampled) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 6);
  config.sampled_training = true;
  config.batch_nodes = 48;
  CheckResumeBitIdentity(config, "resume_sampled.ckpt", /*stop=*/3);
}

TEST(ModelCheckpointTest, ResumeMatchesUninterruptedWorkers2) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 6);
  config.sampled_training = true;
  config.batch_nodes = 48;
  config.workers = 2;
  CheckResumeBitIdentity(config, "resume_w2.ckpt", /*stop=*/3);
}

TEST(ModelCheckpointTest, ResumeMatchesUninterruptedWorkers4) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 6);
  config.sampled_training = true;
  config.batch_nodes = 32;
  config.workers = 4;
  CheckResumeBitIdentity(config, "resume_w4.ckpt", /*stop=*/5);
}

TEST(ModelCheckpointTest, LoadRejectsGeometryMismatch) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 3);
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("geometry.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  core::OpenImaConfig wider = config;
  wider.encoder.hidden_dim = 16;
  core::OpenImaModel wrong_geometry(wider, fx.dataset.feature_dim(),
                                    /*seed=*/11);
  Status s = wrong_geometry.LoadCheckpoint(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("hidden_dim"), std::string::npos);

  core::OpenImaModel wrong_seed(config, fx.dataset.feature_dim(),
                                /*seed=*/12);
  s = wrong_seed.LoadCheckpoint(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("seed"), std::string::npos);

  core::OpenImaConfig dp = config;
  dp.workers = 2;
  dp.sampled_training = true;
  core::OpenImaModel wrong_workers(dp, fx.dataset.feature_dim(), /*seed=*/11);
  s = wrong_workers.LoadCheckpoint(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("workers"), std::string::npos);
}

TEST(ModelCheckpointTest, LoadRequiresFreshModel) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 3);
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("fresh_only.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());
  Status s = model.LoadCheckpoint(path);  // already trained
  EXPECT_FALSE(s.ok());
}

TEST(ModelCheckpointTest, CorruptModelCheckpointsNeverCrash) {
  Fixture fx = SmallProblem();
  core::OpenImaConfig config = SmallConfig(fx, 4);
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("corrupt_model.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());
  const std::string bytes = ReadFileBytes(path);

  // Truncations across the whole file.
  const std::string bad_path = TempPath("corrupt_model_bad.ckpt");
  for (size_t cut : {size_t{0}, size_t{10}, size_t{23}, size_t{24},
                     bytes.size() / 3, bytes.size() / 2, bytes.size() - 1}) {
    WriteFileBytes(bad_path, bytes.substr(0, cut));
    core::OpenImaModel fresh(config, fx.dataset.feature_dim(), /*seed=*/11);
    Status s = fresh.LoadCheckpoint(bad_path);
    EXPECT_FALSE(s.ok()) << "cut at " << cut;
    EXPECT_FALSE(s.message().empty());
  }
  // Byte flips sprinkled over header, table, and payloads.
  for (size_t pos = 0; pos < bytes.size(); pos += bytes.size() / 17 + 1) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5a);
    WriteFileBytes(bad_path, flipped);
    core::OpenImaModel fresh(config, fx.dataset.feature_dim(), /*seed=*/11);
    Status s = fresh.LoadCheckpoint(bad_path);
    EXPECT_FALSE(s.ok()) << "flip at " << pos;
  }
}

}  // namespace
}  // namespace openima
