#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "src/graph/io.h"
#include "src/graph/synthetic.h"
#include "src/nn/gcn.h"
#include "src/nn/serialization.h"

namespace openima {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

graph::Dataset SmallDataset(uint64_t seed = 1) {
  graph::SbmConfig c;
  c.num_nodes = 60;
  c.num_classes = 3;
  c.feature_dim = 5;
  auto ds = graph::GenerateSbm(c, seed, "io_test");
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  graph::Dataset ds = SmallDataset();
  const std::string path = TempPath("dataset_roundtrip.txt");
  ASSERT_TRUE(graph::SaveDataset(ds, path).ok());
  auto loaded = graph::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, ds.name);
  EXPECT_EQ(loaded->num_classes, ds.num_classes);
  EXPECT_EQ(loaded->labels, ds.labels);
  EXPECT_EQ(loaded->graph.num_nodes(), ds.graph.num_nodes());
  EXPECT_EQ(loaded->graph.num_undirected_edges(),
            ds.graph.num_undirected_edges());
  EXPECT_EQ(loaded->graph.num_directed_edges(), ds.graph.num_directed_edges());
  ASSERT_TRUE(loaded->features.SameShape(ds.features));
  EXPECT_TRUE(la::AllClose(loaded->features, ds.features, 1e-5f));
  // Neighbor lists identical.
  for (int v = 0; v < ds.num_nodes(); ++v) {
    auto [b1, e1] = ds.graph.Neighbors(v);
    auto [b2, e2] = loaded->graph.Neighbors(v);
    ASSERT_EQ(e1 - b1, e2 - b2);
    EXPECT_TRUE(std::equal(b1, e1, b2));
  }
}

TEST(DatasetIoTest, MissingFileFails) {
  EXPECT_FALSE(graph::LoadDataset("/nonexistent/nope.txt").ok());
}

TEST(DatasetIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "something else\n");
  std::fclose(f);
  auto loaded = graph::LoadDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsTruncatedFile) {
  graph::Dataset ds = SmallDataset();
  const std::string path = TempPath("truncated.txt");
  ASSERT_TRUE(graph::SaveDataset(ds, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "r");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(graph::LoadDataset(path).ok());
}

TEST(ParamsIoTest, RoundTripRestoresExactOutputs) {
  Rng rng(5);
  nn::GatEncoderConfig cfg;
  cfg.in_dim = 5;
  cfg.hidden_dim = 8;
  cfg.embedding_dim = 6;
  cfg.num_heads = 2;
  nn::GatEncoder original(cfg, &rng);
  graph::Dataset ds = SmallDataset(2);

  autograd::Variable features =
      autograd::Variable::Leaf(ds.features, false);
  la::Matrix want =
      original.Forward(ds.graph, features, false, nullptr).value();

  const std::string path = TempPath("params.txt");
  ASSERT_TRUE(nn::SaveParameters(original, path).ok());

  Rng rng2(99);  // different init
  nn::GatEncoder restored(cfg, &rng2);
  la::Matrix before =
      restored.Forward(ds.graph, features, false, nullptr).value();
  EXPECT_FALSE(before == want);
  ASSERT_TRUE(nn::LoadParameters(&restored, path).ok());
  la::Matrix after =
      restored.Forward(ds.graph, features, false, nullptr).value();
  EXPECT_TRUE(la::AllClose(after, want, 1e-5f));
}

TEST(ParamsIoTest, ShapeMismatchRejected) {
  Rng rng(6);
  nn::GatEncoderConfig small;
  small.in_dim = 4;
  small.hidden_dim = 4;
  small.embedding_dim = 4;
  small.num_heads = 2;
  nn::GatEncoder a(small, &rng);
  const std::string path = TempPath("params_mismatch.txt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());

  nn::GatEncoderConfig bigger = small;
  bigger.hidden_dim = 8;
  nn::GatEncoder b(bigger, &rng);
  EXPECT_FALSE(nn::LoadParameters(&b, path).ok());

  nn::GatEncoderConfig gcn_cfg = small;
  gcn_cfg.arch = nn::EncoderArch::kGcn;
  nn::GcnEncoder c(gcn_cfg, &rng);
  EXPECT_FALSE(nn::LoadParameters(&c, path).ok())
      << "different tensor count must be rejected";
}

TEST(ParamsIoTest, MissingFileFails) {
  Rng rng(7);
  nn::GatEncoderConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 4;
  cfg.embedding_dim = 4;
  cfg.num_heads = 2;
  nn::GatEncoder enc(cfg, &rng);
  EXPECT_FALSE(nn::LoadParameters(&enc, "/nonexistent/params.txt").ok());
}

}  // namespace
}  // namespace openima
