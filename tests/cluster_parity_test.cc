// Parity suite for the triangle-inequality accelerated Lloyd and the
// blocked silhouette path (DESIGN.md §2.3). The accelerated K-Means must be
// *bit-identical* to the plain path — assignments, inertia, centers and
// iteration counts — across data shapes, spherical/warm-start modes, thread
// counts and pooled vs heap storage; the silhouette fast path must agree
// with the scalar reference up to float-vs-double rounding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/exec/context.h"
#include "src/la/matrix_ops.h"
#include "src/la/pool.h"

namespace openima::cluster {
namespace {

/// `k` well-separated Gaussian blobs of `per` points each.
la::Matrix MakeBlobs(int k, int per, int dim, double spread, Rng* rng,
                     std::vector<int>* labels) {
  la::Matrix points(k * per, dim);
  if (labels != nullptr) labels->clear();
  for (int c = 0; c < k; ++c) {
    for (int p = 0; p < per; ++p) {
      const int row = c * per + p;
      if (labels != nullptr) labels->push_back(c);
      for (int j = 0; j < dim; ++j) {
        const double center = (j == c % dim) ? 10.0 * (c + 1) : 0.0;
        points(row, j) = static_cast<float>(center + rng->Normal(0.0, spread));
      }
    }
  }
  return points;
}

/// Unstructured standard-normal data (no cluster structure — pruning is
/// hard, bound failures frequent).
la::Matrix MakeNormal(int n, int dim, Rng* rng) {
  la::Matrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points(i, j) = static_cast<float>(rng->Normal());
    }
  }
  return points;
}

/// Coordinates quantized to a handful of integer values: many exact
/// distance ties, exercising the lowest-index tie-break agreement.
la::Matrix MakeQuantized(int n, int dim, Rng* rng) {
  la::Matrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points(i, j) = static_cast<float>(rng->UniformInt(3));
    }
  }
  return points;
}

/// Runs plain and accelerated Lloyd from identical options/rng state and
/// asserts bit-identical results.
void ExpectParity(const la::Matrix& points, KMeansOptions options,
                  uint64_t seed) {
  options.accelerated = false;
  Rng rng_plain(seed);
  auto plain = KMeans(points, options, &rng_plain);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  options.accelerated = true;
  Rng rng_accel(seed);
  auto accel = KMeans(points, options, &rng_accel);
  ASSERT_TRUE(accel.ok()) << accel.status().ToString();

  EXPECT_EQ(plain->assignments, accel->assignments);
  EXPECT_EQ(plain->inertia, accel->inertia);
  EXPECT_EQ(plain->iterations, accel->iterations);
  ASSERT_EQ(plain->centers.rows(), accel->centers.rows());
  ASSERT_EQ(plain->centers.cols(), accel->centers.cols());
  for (int c = 0; c < plain->centers.rows(); ++c) {
    for (int j = 0; j < plain->centers.cols(); ++j) {
      EXPECT_EQ(plain->centers(c, j), accel->centers(c, j))
          << "center " << c << " dim " << j;
    }
  }
  EXPECT_EQ(plain->bound_prunes, 0);
  EXPECT_EQ(plain->bound_failures, 0);
}

TEST(LloydParityTest, SeparatedBlobs) {
  Rng rng(11);
  la::Matrix points = MakeBlobs(5, 60, 8, 0.5, &rng, nullptr);
  KMeansOptions options;
  options.num_clusters = 5;
  ExpectParity(points, options, 101);
}

TEST(LloydParityTest, UnstructuredNormalData) {
  Rng rng(12);
  la::Matrix points = MakeNormal(400, 16, &rng);
  KMeansOptions options;
  options.num_clusters = 8;
  options.max_iterations = 40;
  ExpectParity(points, options, 102);
}

TEST(LloydParityTest, TieHeavyQuantizedData) {
  Rng rng(13);
  la::Matrix points = MakeQuantized(300, 4, &rng);
  KMeansOptions options;
  options.num_clusters = 6;
  options.max_iterations = 30;
  ExpectParity(points, options, 103);
}

TEST(LloydParityTest, SphericalMode) {
  Rng rng(14);
  la::Matrix points = MakeBlobs(4, 50, 12, 0.8, &rng, nullptr);
  la::RowL2NormalizeInPlace(&points);
  KMeansOptions options;
  options.num_clusters = 4;
  options.spherical = true;
  ExpectParity(points, options, 104);
}

TEST(LloydParityTest, WarmStartMode) {
  Rng rng(15);
  la::Matrix points = MakeBlobs(4, 50, 6, 0.6, &rng, nullptr);
  // Perturbed blob means as warm-start centers.
  la::Matrix init(4, 6);
  for (int c = 0; c < 4; ++c) {
    for (int j = 0; j < 6; ++j) {
      init(c, j) = static_cast<float>((j == c % 6 ? 10.0 * (c + 1) : 0.0) +
                                      rng.Normal(0.0, 2.0));
    }
  }
  KMeansOptions options;
  options.num_clusters = 4;
  options.initial_centers = init;
  ExpectParity(points, options, 105);
}

TEST(LloydParityTest, MultipleRestarts) {
  Rng rng(16);
  la::Matrix points = MakeNormal(250, 8, &rng);
  KMeansOptions options;
  options.num_clusters = 5;
  options.num_init = 3;
  ExpectParity(points, options, 106);
}

TEST(LloydParityTest, SingleCluster) {
  Rng rng(17);
  la::Matrix points = MakeNormal(100, 5, &rng);
  KMeansOptions options;
  options.num_clusters = 1;
  ExpectParity(points, options, 107);
}

TEST(LloydParityTest, ThreadCountInvariance) {
  Rng rng(18);
  la::Matrix points = MakeBlobs(6, 70, 10, 0.7, &rng, nullptr);
  exec::Context serial(1);
  exec::Context parallel(4);
  KMeansOptions options;
  options.num_clusters = 6;

  options.accelerated = false;
  options.exec = &serial;
  Rng r1(201);
  auto plain1 = KMeans(points, options, &r1);
  ASSERT_TRUE(plain1.ok());

  options.accelerated = true;
  options.exec = &parallel;
  Rng r2(201);
  auto accel4 = KMeans(points, options, &r2);
  ASSERT_TRUE(accel4.ok());

  EXPECT_EQ(plain1->assignments, accel4->assignments);
  EXPECT_EQ(plain1->inertia, accel4->inertia);
  EXPECT_EQ(plain1->iterations, accel4->iterations);
}

TEST(LloydParityTest, PooledVsHeapStorage) {
  Rng rng(19);
  la::Matrix points = MakeBlobs(4, 60, 8, 0.5, &rng, nullptr);
  KMeansOptions options;
  options.num_clusters = 4;
  options.accelerated = true;

  Rng r_heap(301);
  auto heap = KMeans(points, options, &r_heap);
  ASSERT_TRUE(heap.ok());

  la::Pool pool;
  cluster::KMeansResult pooled;
  {
    la::PoolBinding binding(&pool);
    Rng r_pool(301);
    auto result = KMeans(points, options, &r_pool);
    ASSERT_TRUE(result.ok());
    pooled = std::move(*result);
  }
  EXPECT_EQ(heap->assignments, pooled.assignments);
  EXPECT_EQ(heap->inertia, pooled.inertia);
  EXPECT_EQ(heap->iterations, pooled.iterations);

  options.accelerated = false;
  Rng r_plain(301);
  auto plain = KMeans(points, options, &r_plain);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->assignments, pooled.assignments);
  EXPECT_EQ(plain->inertia, pooled.inertia);
}

TEST(LloydParityTest, BoundsActuallyPrune) {
  // On well-separated blobs the bounds should eliminate most row scans
  // after the first iteration — the speedup the tentpole claims comes from
  // exactly this.
  Rng rng(20);
  la::Matrix points = MakeBlobs(6, 100, 8, 0.4, &rng, nullptr);
  KMeansOptions options;
  options.num_clusters = 6;
  options.accelerated = true;
  options.max_iterations = 50;
  Rng r(401);
  auto result = KMeans(points, options, &r);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->bound_prunes, 0);
  EXPECT_GT(result->bound_prunes, result->bound_failures);
}

TEST(LloydParityTest, SharedRowNormsMatchInternal) {
  Rng rng(21);
  la::Matrix points = MakeBlobs(3, 50, 7, 0.5, &rng, nullptr);
  const std::vector<float> xsq = la::RowSquaredNorms(points);
  KMeansOptions options;
  options.num_clusters = 3;

  Rng r1(501);
  auto internal = KMeans(points, options, &r1);
  ASSERT_TRUE(internal.ok());

  options.row_sq_norms = &xsq;
  Rng r2(501);
  auto shared = KMeans(points, options, &r2);
  ASSERT_TRUE(shared.ok());

  EXPECT_EQ(internal->assignments, shared->assignments);
  EXPECT_EQ(internal->inertia, shared->inertia);
}

TEST(SilhouetteParityTest, BlockedMatchesScalarReference) {
  Rng rng(31);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(4, 80, 16, 1.0, &rng, &labels);

  SilhouetteOptions scalar_opts;
  scalar_opts.max_samples = 0;
  scalar_opts.use_blocked = false;
  auto scalar = SilhouetteCoefficient(points, labels, scalar_opts, nullptr);
  ASSERT_TRUE(scalar.ok());

  SilhouetteOptions blocked_opts;
  blocked_opts.max_samples = 0;
  blocked_opts.use_blocked = true;
  auto blocked = SilhouetteCoefficient(points, labels, blocked_opts, nullptr);
  ASSERT_TRUE(blocked.ok());

  EXPECT_NEAR(*scalar, *blocked, 5e-3);
}

TEST(SilhouetteParityTest, BlockedThreadCountInvariant) {
  Rng rng(32);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 90, 12, 1.5, &rng, &labels);
  exec::Context serial(1);
  exec::Context parallel(4);
  SilhouetteOptions options;
  options.max_samples = 0;
  options.use_blocked = true;
  options.exec = &serial;
  auto a = SilhouetteCoefficient(points, labels, options, nullptr);
  options.exec = &parallel;
  auto b = SilhouetteCoefficient(points, labels, options, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SilhouetteParityTest, SampledAgreesWithExhaustive) {
  // On well-separated blobs the silhouette is stable under anchor
  // subsampling; the sampled path must land near the exhaustive score.
  Rng rng(33);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(4, 100, 8, 0.5, &rng, &labels);

  SilhouetteOptions exact_opts;
  exact_opts.max_samples = 0;
  auto exact = SilhouetteCoefficient(points, labels, exact_opts, nullptr);
  ASSERT_TRUE(exact.ok());
  EXPECT_GT(*exact, 0.7);  // separated blobs score high

  SilhouetteOptions sampled_opts;
  sampled_opts.max_samples = 120;
  Rng sample_rng(42);
  auto sampled =
      SilhouetteCoefficient(points, labels, sampled_opts, &sample_rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(*exact, *sampled, 0.1);
}

TEST(SilhouetteParityTest, SharedRowNormsMatchInternal) {
  Rng rng(34);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 60, 10, 1.0, &rng, &labels);
  const std::vector<float> ysq = la::RowSquaredNorms(points);

  SilhouetteOptions options;
  options.max_samples = 0;
  auto internal = SilhouetteCoefficient(points, labels, options, nullptr);
  options.row_sq_norms = &ysq;
  auto shared = SilhouetteCoefficient(points, labels, options, nullptr);
  ASSERT_TRUE(internal.ok());
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(*internal, *shared);
}

}  // namespace
}  // namespace openima::cluster
