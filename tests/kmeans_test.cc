#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/la/matrix_ops.h"

namespace openima::cluster {
namespace {

/// Generates `k` well-separated Gaussian blobs of `per` points each.
la::Matrix MakeBlobs(int k, int per, int dim, double spread, Rng* rng,
                     std::vector<int>* labels) {
  la::Matrix points(k * per, dim);
  labels->clear();
  for (int c = 0; c < k; ++c) {
    for (int p = 0; p < per; ++p) {
      const int row = c * per + p;
      labels->push_back(c);
      for (int j = 0; j < dim; ++j) {
        const double center = (j == c % dim) ? 10.0 * (c + 1) : 0.0;
        points(row, j) = static_cast<float>(center + rng->Normal(0.0, spread));
      }
    }
  }
  return points;
}

class KMeansBlobTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansBlobTest, RecoversWellSeparatedBlobs) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k));
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(k, 40, 4, 0.3, &rng, &labels);
  KMeansOptions options;
  options.num_clusters = k;
  options.num_init = 3;
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  // Every ground-truth blob must map to exactly one cluster.
  for (int c = 0; c < k; ++c) {
    std::set<int> assigned;
    for (int p = 0; p < 40; ++p) {
      assigned.insert(result->assignments[static_cast<size_t>(c * 40 + p)]);
    }
    EXPECT_EQ(assigned.size(), 1u) << "blob " << c << " split across clusters";
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterCounts, KMeansBlobTest,
                         ::testing::Values(2, 3, 4, 5, 7));

TEST(KMeansTest, AssignmentsAreNearestCenters) {
  Rng rng(3);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 30, 3, 1.5, &rng, &labels);
  KMeansOptions options;
  options.num_clusters = 3;
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  la::Matrix d2 = la::PairwiseSquaredDistances(points, result->centers);
  for (int i = 0; i < points.rows(); ++i) {
    int best = 0;
    for (int c = 1; c < 3; ++c) {
      if (d2(i, c) < d2(i, best)) best = c;
    }
    EXPECT_EQ(result->assignments[static_cast<size_t>(i)], best);
  }
}

TEST(KMeansTest, CentersAreClusterMeans) {
  Rng rng(4);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(2, 25, 2, 0.5, &rng, &labels);
  KMeansOptions options;
  options.num_clusters = 2;
  options.max_iterations = 200;
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  for (int c = 0; c < 2; ++c) {
    la::Matrix mean(1, 2);
    int count = 0;
    for (int i = 0; i < points.rows(); ++i) {
      if (result->assignments[static_cast<size_t>(i)] != c) continue;
      ++count;
      for (int j = 0; j < 2; ++j) mean(0, j) += points(i, j);
    }
    ASSERT_GT(count, 0);
    for (int j = 0; j < 2; ++j) {
      EXPECT_NEAR(result->centers(c, j), mean(0, j) / count, 1e-3);
    }
  }
}

TEST(KMeansTest, InertiaEqualsDefinition) {
  Rng rng(5);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(2, 20, 2, 1.0, &rng, &labels);
  KMeansOptions options;
  options.num_clusters = 2;
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia,
              Inertia(points, result->centers, result->assignments), 1e-2);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  Rng rng1(6), rng2(6);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(5, 20, 3, 2.5, &rng1, &labels);
  KMeansOptions one;
  one.num_clusters = 5;
  one.num_init = 1;
  one.kmeanspp = false;
  KMeansOptions many = one;
  many.num_init = 8;
  Rng ra(7), rb(7);
  auto r1 = KMeans(points, one, &ra);
  auto r2 = KMeans(points, many, &rb);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r2->inertia, r1->inertia * 1.0001);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Rng rng(8);
  la::Matrix points = la::Matrix::Normal(6, 3, 0.0f, 1.0f, &rng);
  KMeansOptions options;
  options.num_clusters = 6;
  options.max_iterations = 50;
  auto result = KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-3);
  std::set<int> used(result->assignments.begin(), result->assignments.end());
  EXPECT_EQ(used.size(), 6u) << "empty-cluster reseeding must fill all k";
}

TEST(KMeansTest, InvalidArgumentsRejected) {
  Rng rng(9);
  la::Matrix points = la::Matrix::Normal(5, 2, 0.0f, 1.0f, &rng);
  KMeansOptions options;
  options.num_clusters = 6;  // > n
  EXPECT_FALSE(KMeans(points, options, &rng).ok());
  options.num_clusters = 0;
  EXPECT_FALSE(KMeans(points, options, &rng).ok());
  options.num_clusters = 2;
  options.num_init = 0;
  EXPECT_FALSE(KMeans(points, options, &rng).ok());
  EXPECT_FALSE(KMeans(la::Matrix(), options, &rng).ok());
}

TEST(KMeansTest, DeterministicGivenRngState) {
  Rng rng_a(10), rng_b(10);
  std::vector<int> labels;
  Rng data_rng(11);
  la::Matrix points = MakeBlobs(3, 30, 3, 1.0, &data_rng, &labels);
  KMeansOptions options;
  options.num_clusters = 3;
  auto a = KMeans(points, options, &rng_a);
  auto b = KMeans(points, options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

// ---------------------------------------------------------------------------
// Warm starts (the pseudo-label refresh seeds each run from the previous
// refresh's centers)
// ---------------------------------------------------------------------------

TEST(KMeansWarmStartTest, ConvergedCentersAreAFixedPoint) {
  Rng rng(18);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 40, 4, 0.3, &rng, &labels);
  KMeansOptions options;
  options.num_clusters = 3;
  auto cold = KMeans(points, options, &rng);
  ASSERT_TRUE(cold.ok());

  options.initial_centers = cold->centers;
  auto warm = KMeans(points, options, &rng);
  ASSERT_TRUE(warm.ok());
  // Restarting from a converged solution changes nothing and stops
  // immediately — the whole point of warm-starting the refresh cadence.
  EXPECT_LE(warm->iterations, cold->iterations);
  EXPECT_LE(warm->iterations, 2);
  EXPECT_EQ(warm->assignments, cold->assignments);
  EXPECT_NEAR(warm->inertia, cold->inertia, 1e-6 * cold->inertia + 1e-9);
}

TEST(KMeansWarmStartTest, WrongShapeIsInvalidArgument) {
  Rng rng(19);
  la::Matrix points = la::Matrix::Normal(30, 4, 0.0f, 1.0f, &rng);
  KMeansOptions options;
  options.num_clusters = 3;
  options.initial_centers = la::Matrix::Normal(3, 5, 0.0f, 1.0f, &rng);
  EXPECT_FALSE(KMeans(points, options, &rng).ok());  // wrong dim
  options.initial_centers = la::Matrix::Normal(2, 4, 0.0f, 1.0f, &rng);
  EXPECT_FALSE(KMeans(points, options, &rng).ok());  // wrong cluster count
}

TEST(MiniBatchKMeansWarmStartTest, WrongShapeIsInvalidArgument) {
  Rng rng(20);
  la::Matrix points = la::Matrix::Normal(40, 3, 0.0f, 1.0f, &rng);
  MiniBatchKMeansOptions options;
  options.num_clusters = 4;
  options.initial_centers = la::Matrix::Normal(4, 2, 0.0f, 1.0f, &rng);
  EXPECT_FALSE(MiniBatchKMeans(points, options, &rng).ok());
}

// ---------------------------------------------------------------------------
// Mini-batch K-Means
// ---------------------------------------------------------------------------

TEST(MiniBatchKMeansTest, ApproximatesFullKMeansOnBlobs) {
  Rng rng(12);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(4, 100, 4, 0.4, &rng, &labels);
  MiniBatchKMeansOptions options;
  options.num_clusters = 4;
  options.batch_size = 64;
  options.max_iterations = 150;
  auto result = MiniBatchKMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  // Each blob should be dominated by a single cluster id.
  for (int c = 0; c < 4; ++c) {
    std::vector<int> counts(4, 0);
    for (int p = 0; p < 100; ++p) {
      ++counts[static_cast<size_t>(
          result->assignments[static_cast<size_t>(c * 100 + p)])];
    }
    EXPECT_GE(*std::max_element(counts.begin(), counts.end()), 90);
  }
}

TEST(MiniBatchKMeansTest, ValidatesArguments) {
  Rng rng(13);
  la::Matrix points = la::Matrix::Normal(20, 2, 0.0f, 1.0f, &rng);
  MiniBatchKMeansOptions options;
  options.num_clusters = 2;
  options.batch_size = 0;
  EXPECT_FALSE(MiniBatchKMeans(points, options, &rng).ok());
}

// ---------------------------------------------------------------------------
// Silhouette
// ---------------------------------------------------------------------------

TEST(SilhouetteTest, HighForSeparatedLowForMixed) {
  Rng rng(14);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 40, 3, 0.3, &rng, &labels);
  auto good = SilhouetteCoefficient(points, labels, SilhouetteOptions{}, &rng);
  ASSERT_TRUE(good.ok());
  EXPECT_GT(*good, 0.7);

  // Random labels destroy the structure.
  std::vector<int> random_labels = labels;
  rng.Shuffle(&random_labels);
  auto bad =
      SilhouetteCoefficient(points, random_labels, SilhouetteOptions{}, &rng);
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(*bad, *good - 0.4);
}

TEST(SilhouetteTest, SampledCloseToExact) {
  Rng rng(15);
  std::vector<int> labels;
  la::Matrix points = MakeBlobs(3, 80, 3, 1.0, &rng, &labels);
  SilhouetteOptions exact;
  exact.max_samples = 0;
  auto full = SilhouetteCoefficient(points, labels, exact, &rng);
  SilhouetteOptions sampled;
  sampled.max_samples = 100;
  auto approx = SilhouetteCoefficient(points, labels, sampled, &rng);
  ASSERT_TRUE(full.ok() && approx.ok());
  EXPECT_NEAR(*full, *approx, 0.1);
}

TEST(SilhouetteTest, RequiresTwoClusters) {
  Rng rng(16);
  la::Matrix points = la::Matrix::Normal(10, 2, 0.0f, 1.0f, &rng);
  std::vector<int> labels(10, 0);
  EXPECT_FALSE(
      SilhouetteCoefficient(points, labels, SilhouetteOptions{}, &rng).ok());
  labels.resize(5);
  EXPECT_FALSE(
      SilhouetteCoefficient(points, labels, SilhouetteOptions{}, &rng).ok());
}

TEST(SilhouetteTest, SingletonClustersContributeZero) {
  la::Matrix points({{0, 0}, {10, 10}, {10.5f, 10}});
  std::vector<int> labels = {0, 1, 1};
  Rng rng(17);
  auto sc = SilhouetteCoefficient(points, labels, SilhouetteOptions{}, &rng);
  ASSERT_TRUE(sc.ok());
  // Point 0 contributes 0 (singleton); points 1 and 2 are far from cluster 0.
  EXPECT_GT(*sc, 0.5);
  EXPECT_LT(*sc, 1.0);
}

}  // namespace
}  // namespace openima::cluster
