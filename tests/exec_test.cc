#include "src/exec/context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace openima::exec {
namespace {

TEST(ChunkMathTest, NumChunks) {
  EXPECT_EQ(Context::NumChunks(0, 16), 0);
  EXPECT_EQ(Context::NumChunks(1, 16), 1);
  EXPECT_EQ(Context::NumChunks(16, 16), 1);
  EXPECT_EQ(Context::NumChunks(17, 16), 2);
  EXPECT_EQ(Context::NumChunks(32, 16), 2);
  EXPECT_EQ(Context::NumChunks(33, 16), 3);
  // Degenerate grain is clamped to 1.
  EXPECT_EQ(Context::NumChunks(5, 0), 5);
  EXPECT_EQ(Context::NumChunks(5, -3), 5);
}

TEST(ChunkMathTest, ChunkBoundsTileTheRange) {
  for (int64_t n : {0, 1, 5, 16, 17, 100, 1000}) {
    for (int64_t grain : {1, 3, 16, 64, 5000}) {
      const int64_t chunks = Context::NumChunks(n, grain);
      int64_t expected_begin = 0;
      for (int64_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = Context::ChunkBounds(n, grain, c);
        EXPECT_EQ(begin, expected_begin) << "n=" << n << " grain=" << grain;
        EXPECT_GT(end, begin);
        EXPECT_LE(end, n);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ChunkMathTest, GrainForMaxChunksRespectsBothBounds) {
  for (int64_t n : {0, 1, 100, 257, 10000, 1000000}) {
    for (int64_t min_grain : {1, 16, 256}) {
      for (int64_t max_chunks : {1, 8, 64}) {
        const int64_t grain = Context::GrainForMaxChunks(n, min_grain,
                                                         max_chunks);
        EXPECT_GE(grain, min_grain);
        EXPECT_LE(Context::NumChunks(n, grain), max_chunks)
            << "n=" << n << " min_grain=" << min_grain
            << " max_chunks=" << max_chunks;
      }
    }
  }
}

/// Every index in [0, n) must be visited exactly once, for inline and
/// threaded contexts alike.
void CheckParallelForCoverage(const Context& ctx, int64_t n, int64_t grain) {
  std::vector<std::atomic<int>> visits(static_cast<size_t>(n));
  ctx.ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      visits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
        << "index " << i << " n=" << n << " grain=" << grain;
  }
}

TEST(ContextTest, ParallelForCoversEveryIndexOnce) {
  Context inline_ctx(1);
  Context pool_ctx(4);
  for (int64_t n : {0, 1, 7, 64, 1000}) {
    for (int64_t grain : {1, 16, 10000}) {
      CheckParallelForCoverage(inline_ctx, n, grain);
      CheckParallelForCoverage(pool_ctx, n, grain);
    }
  }
}

/// ParallelForChunks must run exactly the fixed chunks ChunkBounds
/// describes, regardless of thread count.
void CheckChunkIdentity(const Context& ctx, int64_t n, int64_t grain) {
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<std::atomic<int>> seen(static_cast<size_t>(chunks));
  ctx.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t begin,
                                      int64_t end) {
    ASSERT_GE(chunk, 0);
    ASSERT_LT(chunk, chunks);
    const auto [eb, ee] = Context::ChunkBounds(n, grain, chunk);
    EXPECT_EQ(begin, eb);
    EXPECT_EQ(end, ee);
    seen[static_cast<size_t>(chunk)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(seen[static_cast<size_t>(c)].load(), 1);
  }
}

TEST(ContextTest, ParallelForChunksMatchesChunkBounds) {
  Context inline_ctx(1);
  Context pool_ctx(4);
  for (int64_t n : {0, 1, 15, 16, 17, 500}) {
    for (int64_t grain : {1, 16, 64}) {
      CheckChunkIdentity(inline_ctx, n, grain);
      CheckChunkIdentity(pool_ctx, n, grain);
    }
  }
}

TEST(ContextTest, NestedCallsRunInlineWithoutDeadlock) {
  Context ctx(4);
  std::atomic<int64_t> total{0};
  ctx.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // A nested region must not be resubmitted to the (busy) pool.
      ctx.ParallelFor(10, 1, [&](int64_t b, int64_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 10);
}

/// The determinism contract in one test: a chunked floating-point
/// reduction combined in chunk order is bit-identical across thread
/// counts, even though float addition is not associative.
double ChunkedSum(const Context& ctx, const std::vector<float>& values) {
  const int64_t n = static_cast<int64_t>(values.size());
  const int64_t grain = Context::GrainForMaxChunks(n, 16, 64);
  const int64_t chunks = Context::NumChunks(n, grain);
  std::vector<double> partial(static_cast<size_t>(chunks), 0.0);
  ctx.ParallelForChunks(n, grain, [&](int64_t chunk, int64_t begin,
                                      int64_t end) {
    double acc = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      acc += static_cast<double>(values[static_cast<size_t>(i)]);
    }
    partial[static_cast<size_t>(chunk)] = acc;
  });
  double total = 0.0;
  for (double p : partial) total += p;  // ascending chunk order
  return total;
}

TEST(ContextTest, ChunkedReductionIsThreadCountInvariant) {
  std::vector<float> values(10007);
  // Wildly varying magnitudes so any reassociation would change the sum.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < values.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const float mag = static_cast<float>((state >> 40) % 1000) - 500.0f;
    values[i] = mag * (1.0f + static_cast<float>(i % 13) * 1e-3f);
  }
  Context c1(1);
  Context c2(2);
  Context c4(4);
  const double s1 = ChunkedSum(c1, values);
  EXPECT_EQ(s1, ChunkedSum(c2, values));
  EXPECT_EQ(s1, ChunkedSum(c4, values));
}

TEST(ContextTest, DefaultAndOverride) {
  Context* before = Default();
  ASSERT_NE(before, nullptr);
  EXPECT_GE(before->num_threads(), 1);
  SetDefaultNumThreads(1);
  EXPECT_EQ(Default()->num_threads(), 1);
  EXPECT_EQ(&Get(nullptr), Default());
  Context explicit_ctx(2);
  EXPECT_EQ(&Get(&explicit_ctx), &explicit_ctx);
  SetDefaultNumThreads(0);  // restore a host-sized default for other tests
}

}  // namespace
}  // namespace openima::exec
