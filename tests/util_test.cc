#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace openima {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("k must be positive").ToString(),
            "InvalidArgument: k must be positive");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status FailsAtStep(int failing_step, int step) {
  if (step == failing_step) return Status::Internal("boom");
  return Status::OK();
}

Status RunSteps(int failing_step) {
  OPENIMA_RETURN_IF_ERROR(FailsAtStep(failing_step, 0));
  OPENIMA_RETURN_IF_ERROR(FailsAtStep(failing_step, 1));
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_FALSE(RunSteps(0).ok());
  EXPECT_FALSE(RunSteps(1).ok());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.NextUint64() != b.NextUint64();
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all residues should appear in 300 draws";
}

TEST(RngTest, NormalMoments) {
  Rng rng(99);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(20, 12);
  EXPECT_EQ(sample.size(), 12u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 12u);
  for (int s : sample) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 20);
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 4000; ++i) ++counts[static_cast<size_t>(rng.Categorical(w))];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.Fork();
  // The fork must not replay the parent's stream.
  Rng a2(42);
  a2.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("x", ',').size(), 1u);
}

TEST(StringUtilTest, PctFormatsPercentage) {
  EXPECT_EQ(Pct(0.7312), "73.1");
  EXPECT_EQ(Pct(1.0), "100.0");
  EXPECT_EQ(Pct(0.0), "0.0");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, RendersAlignedCells) {
  Table t({"Method", "All"});
  t.AddRow({"OpenIMA", "77.1"});
  t.AddRow({"X", "1.0"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| Method  |"), std::string::npos);
  EXPECT_NE(out.find("OpenIMA"), std::string::npos);
  // All lines between separators have equal width.
  size_t width = out.find('\n');
  for (size_t pos = 0; pos < out.size();) {
    size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddSeparator();
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, TitleShown) {
  Table t({"a"});
  t.SetTitle("Table III");
  EXPECT_EQ(t.ToString().rfind("Table III", 0), 0u);
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog", "--seeds=3", "--scale=0.5", "--name=x",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("seeds", 1), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_TRUE(flags.Has("seeds"));
  EXPECT_FALSE(flags.Has("missing"));
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, InlineModeOnSingleThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0) << "single-thread pools run inline";
  int x = 0;
  pool.Submit([&x] { x = 5; });
  EXPECT_EQ(x, 5);
}

TEST(ThreadPoolTest, WaitWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: must not deadlock
  pool.Wait();  // and must be repeatable
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();  // queue drained again
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReentrantSubmitFromWorkerTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();  // must also cover the tasks submitted from inside workers
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, ForcedThreadModeSpawnsARealWorker) {
  ThreadPool pool(1, /*inline_when_single=*/false);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id task_thread;
  pool.Submit([&task_thread] { task_thread = std::this_thread::get_id(); });
  pool.Wait();
  EXPECT_NE(task_thread, caller)
      << "inline_when_single=false must move work off the calling thread";
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskGroupTest, WaitsForExactlyItsOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> group_done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.Submit([&group_done] { group_done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(group_done.load(), 32);
}

TEST(TaskGroupTest, RethrowsFirstExceptionBySubmissionOrder) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  group.Submit([] {});  // slot 0: fine
  group.Submit([] { throw std::runtime_error("first"); });
  group.Submit([] { throw std::runtime_error("second"); });
  try {
    group.Wait();
    FAIL() << "Wait() must rethrow";
  } catch (const std::runtime_error& e) {
    // Deterministic choice even when both tasks fail concurrently.
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(TaskGroupTest, IsReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  group.Submit([&counter] { counter.fetch_add(1); });
  group.Wait();
  group.Submit([] { throw std::runtime_error("round two"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  group.Submit([&counter] { counter.fetch_add(1); });
  group.Wait();  // error state cleared by the previous Wait()
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskGroupTest, NullPoolRunsInlineAndStillDefersExceptions) {
  TaskGroup group(nullptr);
  int x = 0;
  group.Submit([&x] { x = 7; });
  EXPECT_EQ(x, 7) << "no workers: task runs inline at Submit";
  group.Submit([] { throw std::runtime_error("deferred"); });
  // The exception must NOT escape Submit — uniform control flow with the
  // threaded path means it surfaces at Wait().
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, InlinePoolDefersExceptionsToo) {
  ThreadPool pool(1);  // inline mode: num_threads() == 0
  TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("inline"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  group.Wait();  // reusable and clean after the rethrow
}

TEST(ParallelForTest, CoversEntireRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 1000, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  int total = 0;
  ParallelFor(nullptr, 10, [&total](int64_t begin, int64_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total, 10);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(nullptr, 0, [&called](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace openima
