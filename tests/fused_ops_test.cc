#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/la/fast_math.h"
#include "src/la/matrix.h"
#include "src/la/matrix_ops.h"
#include "src/util/rng.h"

/// The fused autograd ops (AddBiasElu, NormalizedSupCon) exist for the
/// arena's sake — fewer nodes, fewer intermediate buffers — but they must
/// be drop-in replacements for the chains they fuse: analytic backwards
/// verified against finite differences, and forward/backward values
/// matching the composed ops. The fast-math kernels they lean on are pinned
/// here too.
namespace openima::autograd {
namespace {

namespace ops = openima::autograd::ops;

Variable Leaf(const la::Matrix& m) { return Variable::Leaf(m, true); }

la::Matrix RandomMatrix(int rows, int cols, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return la::Matrix::Normal(rows, cols, 0.0f, scale, &rng);
}

/// Random matrix with every entry pushed at least `margin` away from zero —
/// keeps finite differences off the ELU kink.
la::Matrix RandomMatrixOffKink(int rows, int cols, uint64_t seed,
                               float margin = 0.05f) {
  la::Matrix m = RandomMatrix(rows, cols, seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    float& v = m.data()[i];
    if (v >= 0.0f && v < margin) v += margin;
    if (v < 0.0f && v > -margin) v -= margin;
  }
  return m;
}

/// Positive sets for a 6-row contrastive block (every anchor has >= 1
/// positive, none lists itself).
std::vector<std::vector<int>> SixRowPositives() {
  return {{2}, {3, 4}, {0}, {1}, {1}, {0, 2}};
}

// ---------------------------------------------------------------------------
// Gradchecks: analytic backwards vs finite differences
// ---------------------------------------------------------------------------

TEST(FusedGradCheckTest, AddBiasElu) {
  // Keep x + bias off the kink: off-kink x with |entries| >= 0.3 dominates
  // the small bias.
  la::Matrix x = RandomMatrixOffKink(5, 4, 41, 0.3f);
  la::Matrix bias = RandomMatrix(1, 4, 42, 0.05f);
  std::vector<Variable> leaves = {Leaf(x), Leaf(bias)};
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& in) {
        return ops::MeanAll(ops::AddBiasElu(in[0], in[1]));
      },
      &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure << " (max err "
                         << result.max_abs_error << ")";
}

TEST(FusedGradCheckTest, AddBiasEluNonUnitAlpha) {
  la::Matrix x = RandomMatrixOffKink(4, 3, 43, 0.3f);
  la::Matrix bias = RandomMatrix(1, 3, 44, 0.05f);
  std::vector<Variable> leaves = {Leaf(x), Leaf(bias)};
  GradCheckResult result = CheckGradients(
      [](const std::vector<Variable>& in) {
        return ops::MeanAll(ops::AddBiasElu(in[0], in[1], 0.5f));
      },
      &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure << " (max err "
                         << result.max_abs_error << ")";
}

TEST(FusedGradCheckTest, NormalizedSupCon) {
  // Offset away from the origin so no row norm comes near the eps
  // passthrough, which would break differentiability.
  la::Matrix x = RandomMatrix(6, 4, 45);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] += 0.3f;
  std::vector<Variable> leaves = {Leaf(x)};
  const auto positives = SixRowPositives();
  GradCheckResult result = CheckGradients(
      [&positives](const std::vector<Variable>& in) {
        return ops::NormalizedSupCon(in[0], positives, 0.7f);
      },
      &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure << " (max err "
                         << result.max_abs_error << ")";
}

// ---------------------------------------------------------------------------
// Fused vs composed parity
// ---------------------------------------------------------------------------

TEST(FusedParityTest, AddBiasEluMatchesComposedChain) {
  la::Matrix x = RandomMatrix(7, 5, 46);
  la::Matrix bias = RandomMatrix(1, 5, 47, 0.1f);

  Variable xf = Leaf(x), bf = Leaf(bias);
  Variable fused = ops::AddBiasElu(xf, bf);
  ops::MeanAll(fused).Backward();

  Variable xc = Leaf(x), bc = Leaf(bias);
  Variable composed = ops::Elu(ops::AddRowBroadcast(xc, bc));
  ops::MeanAll(composed).Backward();

  ASSERT_EQ(fused.rows(), composed.rows());
  ASSERT_EQ(fused.cols(), composed.cols());
  for (int64_t i = 0; i < fused.value().size(); ++i) {
    EXPECT_NEAR(fused.value().data()[i], composed.value().data()[i], 1e-6f);
  }
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xf.grad().data()[i], xc.grad().data()[i], 1e-6f);
  }
  for (int64_t i = 0; i < bias.size(); ++i) {
    EXPECT_NEAR(bf.grad().data()[i], bc.grad().data()[i], 1e-6f);
  }
}

TEST(FusedParityTest, NormalizedSupConMatchesComposedChain) {
  la::Matrix x = RandomMatrix(6, 4, 48);
  for (int64_t i = 0; i < x.size(); ++i) x.data()[i] += 0.3f;
  const auto positives = SixRowPositives();
  const float tau = 0.7f;

  Variable xf = Leaf(x);
  Variable fused = ops::NormalizedSupCon(xf, positives, tau);
  fused.Backward();

  Variable xc = Leaf(x);
  Variable composed = ops::SupConLoss(ops::RowL2Normalize(xc), positives, tau);
  composed.Backward();

  // The two paths use different softmax shifts (1/tau vs per-row max), so
  // parity is tolerance-level, not bit-level.
  EXPECT_NEAR(fused.value()(0, 0), composed.value()(0, 0), 1e-5f);
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(xf.grad().data()[i], xc.grad().data()[i], 1e-5f)
        << "grad entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Fast-math kernels
// ---------------------------------------------------------------------------

TEST(FastMathTest, FastExpTracksStdExp) {
  // Sweep the stable range densely; < 3 ulp claimed, 1e-6 relative asserted.
  for (int i = -8700; i <= 1000; ++i) {
    const float x = static_cast<float>(i) * 0.01f;
    const double expected = std::exp(static_cast<double>(x));
    const double got = la::FastExp(x);
    EXPECT_NEAR(got / expected, 1.0, 1e-6) << "x = " << x;
  }
}

TEST(FastMathTest, FastExpClampsExtremes) {
  // Below the clamp: tiny but positive (a softmax denominator stays > 0).
  EXPECT_GT(la::FastExp(-1000.0f), 0.0f);
  EXPECT_LT(la::FastExp(-1000.0f), 1e-37f);
  EXPECT_GT(la::FastExp(-std::numeric_limits<float>::infinity()), 0.0f);
  EXPECT_LT(la::FastExp(-std::numeric_limits<float>::infinity()), 1e-37f);
  // Above the clamp: large but finite.
  EXPECT_TRUE(std::isfinite(la::FastExp(1000.0f)));
  EXPECT_GT(la::FastExp(1000.0f), 1e38f);
  EXPECT_EQ(la::FastExp(0.0f), 1.0f);
}

TEST(FastMathTest, ExpShiftedAppliesShift) {
  const float in[4] = {1.0f, 2.0f, 3.0f, -50.0f};
  float out[4];
  la::ExpShifted(in, 2.0f, out, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(out[k], std::exp(in[k] - 2.0f), 1e-6 * std::exp(in[k] - 2.0f));
  }
}

TEST(FastMathTest, RowSumIsExactAndHandlesRaggedTails) {
  for (int n : {1, 3, 7, 8, 9, 16, 61, 64, 257}) {
    std::vector<float> v(static_cast<size_t>(n));
    double expected = 0.0;
    for (int k = 0; k < n; ++k) {
      v[static_cast<size_t>(k)] = static_cast<float>((k % 13) - 6) * 0.25f;
      expected += v[static_cast<size_t>(k)];
    }
    EXPECT_NEAR(la::RowSum(v.data(), n), expected, 1e-9) << "n = " << n;
  }
}

TEST(FastMathTest, RowMaxHandlesRaggedTailsAndNegInf) {
  for (int n : {1, 2, 7, 8, 9, 31, 64}) {
    std::vector<float> v(static_cast<size_t>(n),
                         -std::numeric_limits<float>::infinity());
    // Put the max at the last position: exercises both tail paths.
    v[static_cast<size_t>(n - 1)] = 2.5f;
    EXPECT_EQ(la::RowMax(v.data(), n), 2.5f) << "n = " << n;
    if (n > 1) {
      v[0] = 7.0f;
      EXPECT_EQ(la::RowMax(v.data(), n), 7.0f) << "n = " << n;
    }
  }
  const float all_neg_inf[3] = {-std::numeric_limits<float>::infinity(),
                                -std::numeric_limits<float>::infinity(),
                                -std::numeric_limits<float>::infinity()};
  EXPECT_EQ(la::RowMax(all_neg_inf, 3),
            -std::numeric_limits<float>::infinity());
}

// ---------------------------------------------------------------------------
// In-place kernel family (what the fused backwards accumulate through)
// ---------------------------------------------------------------------------

TEST(InPlaceOpsTest, AddScaleAxpyHadamard) {
  const la::Matrix a = RandomMatrix(5, 6, 51);
  const la::Matrix b = RandomMatrix(5, 6, 52);
  la::Matrix dst = RandomMatrix(5, 6, 53);
  const la::Matrix dst0 = dst;

  la::AddInPlace(a, &dst);
  for (int64_t i = 0; i < dst.size(); ++i) {
    EXPECT_FLOAT_EQ(dst.data()[i], dst0.data()[i] + a.data()[i]);
  }

  la::ScaleInPlace(0.5f, &dst);
  for (int64_t i = 0; i < dst.size(); ++i) {
    EXPECT_FLOAT_EQ(dst.data()[i], (dst0.data()[i] + a.data()[i]) * 0.5f);
  }

  la::Matrix axpy = dst0;
  la::AxpyInPlace(-2.0f, a, &axpy);
  for (int64_t i = 0; i < axpy.size(); ++i) {
    EXPECT_FLOAT_EQ(axpy.data()[i], dst0.data()[i] - 2.0f * a.data()[i]);
  }

  la::Matrix had = dst0;
  la::HadamardAddInPlace(a, b, &had);
  for (int64_t i = 0; i < had.size(); ++i) {
    EXPECT_FLOAT_EQ(had.data()[i], dst0.data()[i] + a.data()[i] * b.data()[i]);
  }
}

TEST(InPlaceOpsTest, MatmulAccumulateMatchesReference) {
  const la::Matrix a = RandomMatrix(4, 7, 54);
  const la::Matrix b = RandomMatrix(7, 3, 55);
  la::Matrix c = RandomMatrix(4, 3, 56);
  const la::Matrix c0 = c;
  la::MatmulAccumulate(a, b, 0.75f, &c);
  const la::Matrix ref = la::MatmulReference(a, b);
  for (int64_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], c0.data()[i] + 0.75f * ref.data()[i], 1e-5f);
  }
}

TEST(InPlaceOpsTest, TransposeMatchesNaive) {
  // Odd, tile-straddling shape for the tiled kernel.
  const la::Matrix m = RandomMatrix(67, 35, 57);
  const la::Matrix t = la::Transpose(m);
  ASSERT_EQ(t.rows(), 35);
  ASSERT_EQ(t.cols(), 67);
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
}

}  // namespace
}  // namespace openima
