// Observability layer: JSON round-trips, deterministic metric merges,
// span nesting, chrome-trace well-formedness, and the OPENIMA_OBS=OFF
// no-op guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.h"

namespace openima::obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, RoundTripAllTypes) {
  json::Value root = json::Value::Object();
  root.Set("null", json::Value::Null());
  root.Set("bool", json::Value::Bool(true));
  root.Set("int", json::Value::Int(-1234567890123456789LL));
  root.Set("double", json::Value::Double(0.1));
  root.Set("tiny", json::Value::Double(5e-324));
  root.Set("str", json::Value::Str("a \"quoted\"\nline\twith\\escapes"));
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Int(0));
  arr.Append(json::Value::Double(-1.5));
  arr.Append(json::Value::Str(""));
  root.Set("arr", std::move(arr));
  json::Value nested = json::Value::Object();
  nested.Set("k", json::Value::Int(7));
  root.Set("obj", std::move(nested));

  for (int indent : {0, 2}) {
    auto reparsed = json::Value::Parse(root.Dump(indent));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(*reparsed == root) << "indent=" << indent;
  }
}

TEST(JsonTest, IntegersSurviveExactly) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1} << 62,
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    json::Value j = json::Value::Int(v);
    auto back = json::Value::Parse(j.Dump());
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE(back->is_int()) << v;
    EXPECT_EQ(back->AsInt(), v);
  }
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  json::Value j = json::Value::Double(std::nan(""));
  auto back = json::Value::Parse(j.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "123 456", "nul",
                          "\"unterminated", "{\"a\" 1}"}) {
    EXPECT_FALSE(json::Value::Parse(bad).ok()) << bad;
  }
}

// ------------------------------------------------------------- metrics --

// Splits `total` Add(1) calls over `num_threads` threads; the merged value
// must equal `total` for every thread count (the determinism contract: all
// recorded values are exact int64 sums).
int64_t CounterTotalWithThreads(int num_threads, int64_t total) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int64_t begin = total * t / num_threads;
    const int64_t end = total * (t + 1) / num_threads;
    threads.emplace_back([&c, begin, end] {
      for (int64_t i = begin; i < end; ++i) c.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  return c.Total();
}

TEST(MetricsTest, CounterMergeIsThreadCountInvariant) {
  constexpr int64_t kTotal = 20000;
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(CounterTotalWithThreads(threads, kTotal), kTotal)
        << threads << " threads";
  }
}

HistogramSnapshot HistogramSnapshotWithThreads(int num_threads, int n) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int begin = n * t / num_threads;
    const int end = n * (t + 1) / num_threads;
    threads.emplace_back([&h, begin, end] {
      // Same multiset of values regardless of the partition.
      for (int i = begin; i < end; ++i) h.Record((i % 37) * 100 - 100);
    });
  }
  for (auto& th : threads) th.join();
  return h.Snapshot();
}

TEST(MetricsTest, HistogramMergeIsThreadCountInvariant) {
  constexpr int kN = 10000;
  const HistogramSnapshot ref = HistogramSnapshotWithThreads(1, kN);
  EXPECT_EQ(ref.count, kN);
  for (int threads : {2, 4}) {
    const HistogramSnapshot s = HistogramSnapshotWithThreads(threads, kN);
    EXPECT_EQ(s.count, ref.count) << threads;
    EXPECT_EQ(s.sum, ref.sum) << threads;
    EXPECT_EQ(s.min, ref.min) << threads;
    EXPECT_EQ(s.max, ref.max) << threads;
    EXPECT_EQ(s.buckets, ref.buckets) << threads;
  }
}

TEST(MetricsTest, HistogramBuckets) {
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1 << 20), 21);
}

TEST(MetricsTest, HistogramQuantileInterpolatesAndClamps) {
  HistogramSnapshot empty;
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0.0);

  // A single value: every quantile is that value (clamped by min == max).
  Histogram one;
  one.Record(100);
  const HistogramSnapshot s1 = one.Snapshot();
  EXPECT_EQ(HistogramQuantile(s1, 0.0), 100.0);
  EXPECT_EQ(HistogramQuantile(s1, 0.5), 100.0);
  EXPECT_EQ(HistogramQuantile(s1, 0.99), 100.0);

  // 100 values 1..100: quantile estimates live inside power-of-two
  // buckets, so p50 lands in [32, 64) and p99 in [64, 100] (clamped by the
  // exact max), both within a bucket-width of the exact order statistic.
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  const double p50 = HistogramQuantile(s, 0.50);
  const double p99 = HistogramQuantile(s, 0.99);
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(HistogramQuantile(s, 0.0), p50);
  EXPECT_LE(p50, p99);
  // Quantiles never escape the observed range.
  EXPECT_GE(HistogramQuantile(s, 0.0), 1.0);
  EXPECT_LE(HistogramQuantile(s, 1.0), 100.0);
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  // Empty histogram: every quantile — including the tail ones the live
  // dashboard asks for — is 0, never NaN or a stale bucket edge.
  HistogramSnapshot empty;
  EXPECT_EQ(HistogramQuantile(empty, 0.0), 0.0);
  EXPECT_EQ(HistogramQuantile(empty, 0.999), 0.0);
  EXPECT_EQ(HistogramQuantile(empty, 1.0), 0.0);

  // All mass in one bucket: interpolation inside the bucket must still be
  // clamped to the observed [min, max], so identical values are exact.
  Histogram same;
  for (int i = 0; i < 1000; ++i) same.Record(37);
  const HistogramSnapshot s_same = same.Snapshot();
  EXPECT_EQ(HistogramQuantile(s_same, 0.001), 37.0);
  EXPECT_EQ(HistogramQuantile(s_same, 0.5), 37.0);
  EXPECT_EQ(HistogramQuantile(s_same, 0.999), 37.0);

  // p999 with 1000 distinct values: rank 999 of 1..1000 — the estimate
  // sits in the top power-of-two bucket and never escapes the range.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  const double p999 = HistogramQuantile(s, 0.999);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 1000.0);
  EXPECT_GE(p999, HistogramQuantile(s, 0.99));

  // Values at/beyond the last bucket boundary: the top bucket is open-ended,
  // so the estimate must stay finite and clamp to the recorded max.
  Histogram big;
  big.Record(1);
  big.Record(std::numeric_limits<int64_t>::max());
  const HistogramSnapshot s_big = big.Snapshot();
  const double tail = HistogramQuantile(s_big, 0.999);
  EXPECT_TRUE(std::isfinite(tail));
  EXPECT_LE(tail, static_cast<double>(std::numeric_limits<int64_t>::max()));
  EXPECT_GE(tail, 1.0);
  EXPECT_EQ(s_big.max, std::numeric_limits<int64_t>::max());
}

TEST(MetricsTest, RegistrySnapshotIsSortedAndResettable) {
  MetricsRegistry registry;
  registry.counter("b.second")->Add(2);
  registry.counter("a.first")->Add(1);
  registry.gauge("g")->Set(0.5);
  registry.histogram("h")->Record(42);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.first");
  EXPECT_EQ(snap.counters.at("b.second"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1);

  registry.Reset();
  snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("a.first"), 0);  // handles survive a reset
  EXPECT_EQ(snap.histograms.at("h").count, 0);
}

// --------------------------------------------------------------- spans --

#if OPENIMA_OBS_ENABLED

TEST(SpanTest, NestedPhasesFormSlashPaths) {
  MetricsRegistry::Global()->Reset();
  {
    Phase outer("span_outer");
    {
      Phase inner("span_inner");
    }
    {
      Phase inner("span_inner");
    }
  }
  MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  ASSERT_TRUE(snap.histograms.count("time/span_outer"));
  ASSERT_TRUE(snap.histograms.count("time/span_outer/span_inner"));
  EXPECT_EQ(snap.histograms.at("time/span_outer").count, 1);
  EXPECT_EQ(snap.histograms.at("time/span_outer/span_inner").count, 2);

  const std::string breakdown = PhaseBreakdown();
  EXPECT_NE(breakdown.find("span_outer/span_inner"), std::string::npos);
}

TEST(SpanTest, TraceFileIsWellFormedAndNested) {
  MetricsRegistry::Global()->Reset();
  ResetTraceForTest();
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(StartTracing(path).ok());
  EXPECT_TRUE(TracingActive());
  EXPECT_FALSE(StartTracing(path).ok());  // already active
  {
    Phase outer("trace_outer");
    Phase inner("trace_inner");
  }
  ASSERT_TRUE(StopTracing().ok());
  EXPECT_FALSE(TracingActive());

  auto doc = json::Value::Parse(ReadFileOrDie(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  const json::Value& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 2u);

  // Events are sorted parents-first per thread; the child must be fully
  // contained in the parent (that containment IS the nesting chrome's
  // viewer reconstructs).
  const json::Value& outer = events.at(0);
  const json::Value& inner = events.at(1);
  EXPECT_EQ(outer.at("name").AsString(), "trace_outer");
  EXPECT_EQ(inner.at("name").AsString(), "trace_inner");
  EXPECT_EQ(outer.at("ph").AsString(), "X");
  EXPECT_EQ(inner.at("args").at("path").AsString(),
            "trace_outer/trace_inner");
  const double o_ts = outer.at("ts").AsDouble();
  const double o_end = o_ts + outer.at("dur").AsDouble();
  const double i_ts = inner.at("ts").AsDouble();
  const double i_end = i_ts + inner.at("dur").AsDouble();
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
  std::remove(path.c_str());
}

TEST(SpanTest, ScopedTimerRecordsVerbatimName) {
  MetricsRegistry::Global()->Reset();
  {
    Phase outer("timer_outer");
    ScopedTimer timer("custom.timer");
  }
  MetricsSnapshot snap = MetricsRegistry::Global()->Snapshot();
  // No "time/" prefix and no nesting for ad-hoc timers.
  ASSERT_TRUE(snap.histograms.count("custom.timer"));
  EXPECT_EQ(snap.histograms.at("custom.timer").count, 1);
  EXPECT_FALSE(snap.histograms.count("time/timer_outer/custom.timer"));
}

#else  // !OPENIMA_OBS_ENABLED

TEST(SpanTest, CompiledOutMacrosAreNoOps) {
  MetricsRegistry::Global()->Reset();
  {
    OPENIMA_OBS_PHASE("disabled_phase");
    OPENIMA_OBS_COUNT("disabled.count", 1);
    OPENIMA_OBS_GAUGE("disabled.gauge", 1.0);
    OPENIMA_OBS_RECORD("disabled.histogram", 1);
    Phase phase("disabled_phase_object");
    ScopedTimer timer("disabled_timer_object");
  }
  EXPECT_TRUE(MetricsRegistry::Global()->Snapshot().empty());
  EXPECT_TRUE(PhaseBreakdown().empty());
  EXPECT_FALSE(StartTracing("/dev/null").ok());
  EXPECT_FALSE(TracingActive());
  EXPECT_FALSE(kCompiledIn);
}

#endif  // OPENIMA_OBS_ENABLED

// -------------------------------------------------------------- report --

TEST(ReportTest, RoundTripsThroughJson) {
  RunReport report("obs_test");
  report.Set("run", "dataset", json::Value::Str("synthetic"));
  report.Set("run", "epochs", json::Value::Int(15));

  MetricsRegistry registry;
  registry.counter("adam.steps")->Add(15);
  registry.gauge("train.loss")->Set(1.25);
  registry.histogram("time/epoch")->Record(1000000);
  registry.histogram("block.bytes")->Record(4096);
  report.AddMetrics(registry.Snapshot());

  EXPECT_EQ(report.root().at("run_name").AsString(), "obs_test");
  EXPECT_EQ(report.root().at("run").at("epochs").AsInt(), 15);
  const json::Value& metrics = report.root().at("metrics");
  EXPECT_EQ(metrics.at("counters").at("adam.steps").AsInt(), 15);
  // Phase histograms are reported via AddPhaseBreakdown, not AddMetrics.
  EXPECT_FALSE(metrics.at("histograms").Has("time/epoch"));
  EXPECT_EQ(metrics.at("histograms").at("block.bytes").at("count").AsInt(), 1);

  auto reparsed = RunReport::Parse(report.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(*reparsed == report.root());
}

TEST(ReportTest, WriteFileMatchesToJson) {
  RunReport report("obs_test_file");
  report.Set("run", "k", json::Value::Int(1));
  const std::string path = testing::TempDir() + "/obs_test_report.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  auto from_disk = json::Value::Parse(ReadFileOrDie(path));
  ASSERT_TRUE(from_disk.ok());
  EXPECT_TRUE(*from_disk == report.root());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace openima::obs
