#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/exec/context.h"
#include "src/la/matrix.h"
#include "src/la/matrix_ops.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace openima::la {
namespace {

/// The blocked/parallel GEMM promises bit-identical results to the naive
/// i-k-j reference loop, so parity here is exact float equality — not
/// near-equality — on every input class, including NaN/Inf (where we
/// require matching special-value category: same bits is too strict across
/// NaN payload choices, but NaN must stay NaN and Inf must stay Inf).
void ExpectExact(const Matrix& got, const Matrix& want,
                 const std::string& label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (int64_t i = 0; i < got.size(); ++i) {
    const float g = got.data()[i];
    const float w = want.data()[i];
    if (std::isnan(w)) {
      EXPECT_TRUE(std::isnan(g)) << label << " flat index " << i;
    } else {
      EXPECT_EQ(g, w) << label << " flat index " << i;
    }
  }
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    // Varied magnitudes: reassociated accumulation would show up instantly.
    m.data()[i] = static_cast<float>(rng->Normal() *
                                     std::pow(10.0, rng->Uniform(-2.0, 2.0)));
  }
  return m;
}

/// ~70% exact zeros: the seed kernel had an `if (av == 0.0f) continue;`
/// shortcut that skipped k-terms and silently dropped NaN/Inf columns; the
/// rewritten kernels must process every term.
Matrix ZeroHeavyMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform() < 0.7 ? 0.0f
                                       : static_cast<float>(rng->Normal());
  }
  return m;
}

void CheckAllProducts(const Matrix& a, const Matrix& b,
                      const exec::Context* ctx, const std::string& label) {
  const Matrix want = MatmulReference(a, b);
  ExpectExact(Matmul(a, b, ctx), want, label + " Matmul");
  // TN/NT parity against the reference on explicitly transposed operands.
  const Matrix at = Transpose(a);
  const Matrix bt = Transpose(b);
  ExpectExact(MatmulTN(at, b, ctx), want, label + " MatmulTN");
  ExpectExact(MatmulNT(a, bt, ctx), want, label + " MatmulNT");
  // Accumulate: C starts non-zero; reference adds alpha * (a@b) term-by-term
  // in the same i-k-j order, so exact equality still holds.
  Rng rng(7);
  Matrix c0(a.rows(), b.cols());
  for (int64_t i = 0; i < c0.size(); ++i) {
    c0.data()[i] = static_cast<float>(rng.Normal());
  }
  Matrix got = c0;
  MatmulAccumulate(a, b, 0.5f, &got, ctx);
  Matrix want_acc = c0;
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = want_acc.Row(i);
    for (int p = 0; p < a.cols(); ++p) {
      const float av = 0.5f * arow[p];
      const float* brow = b.Row(p);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  ExpectExact(got, want_acc, label + " MatmulAccumulate");
}

class KernelParityTest : public ::testing::TestWithParam<int> {
 protected:
  exec::Context ctx_{GetParam()};
};

TEST_P(KernelParityTest, GemmMatchesReferenceOnRandomInputs) {
  Rng rng(42);
  // Shapes straddling the kMr=4 / kNr=16 / kKc=512 tile boundaries.
  const int shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 16},
                           {5, 17, 33}, {64, 64, 64}, {70, 530, 19},
                           {33, 700, 40}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    CheckAllProducts(a, b, &ctx_,
                     StrFormat("random %dx%dx%d", s[0], s[1], s[2]));
  }
}

TEST_P(KernelParityTest, GemmMatchesReferenceOnZeroHeavyInputs) {
  Rng rng(43);
  const Matrix a = ZeroHeavyMatrix(37, 65, &rng);
  const Matrix b = ZeroHeavyMatrix(65, 29, &rng);
  CheckAllProducts(a, b, &ctx_, "zero-heavy");
}

TEST_P(KernelParityTest, GemmPropagatesNanAndInf) {
  Rng rng(44);
  Matrix a = ZeroHeavyMatrix(19, 40, &rng);
  Matrix b = RandomMatrix(40, 23, &rng);
  // Specials parked on zero-heavy rows/cols: the seed shortcut would have
  // skipped `0 * Inf` (= NaN) terms entirely.
  a(2, 11) = std::numeric_limits<float>::quiet_NaN();
  a(7, 0) = std::numeric_limits<float>::infinity();
  a(12, 39) = -std::numeric_limits<float>::infinity();
  b(5, 3) = std::numeric_limits<float>::quiet_NaN();
  b(30, 22) = std::numeric_limits<float>::infinity();
  CheckAllProducts(a, b, &ctx_, "nan-inf");

  // Targeted check: a zero in A against an Inf in B must produce NaN.
  Matrix za(1, 2);
  za(0, 0) = 0.0f;
  za(0, 1) = 1.0f;
  Matrix zb(2, 1);
  zb(0, 0) = std::numeric_limits<float>::infinity();
  zb(1, 0) = 2.0f;
  EXPECT_TRUE(std::isnan(Matmul(za, zb, &ctx_)(0, 0)))
      << "0 * Inf term must not be skipped";
  EXPECT_TRUE(std::isnan(MatmulReference(za, zb)(0, 0)));
}

TEST_P(KernelParityTest, RowKernelsMatchSerialAcrossThreadCounts) {
  Rng rng(45);
  const Matrix m = RandomMatrix(101, 13, &rng);
  exec::Context serial(1);
  // Row-parallel kernels only split work across rows; each row's math is
  // unchanged, so outputs are bit-identical to the single-thread path.
  ExpectExact(RowSoftmax(m, &ctx_), RowSoftmax(m, &serial), "RowSoftmax");
  ExpectExact(RowLogSoftmax(m, &ctx_), RowLogSoftmax(m, &serial),
              "RowLogSoftmax");
  ExpectExact(Transpose(m, &ctx_), Transpose(m, &serial), "Transpose");

  const Matrix centers = RandomMatrix(7, 13, &rng);
  ExpectExact(PairwiseSquaredDistances(m, centers, &ctx_),
              PairwiseSquaredDistances(m, centers, &serial),
              "PairwiseSquaredDistances");

  std::vector<int> rows;
  for (int i = 0; i < m.rows(); i += 3) rows.push_back(i);
  ExpectExact(GatherRows(m, rows, &ctx_), GatherRows(m, rows, &serial),
              "GatherRows");

  Matrix n1 = m;
  Matrix n4 = m;
  RowL2NormalizeInPlace(&n1, 1e-12f, &serial);
  RowL2NormalizeInPlace(&n4, 1e-12f, &ctx_);
  ExpectExact(n4, n1, "RowL2NormalizeInPlace");
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, KernelParityTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace openima::la
