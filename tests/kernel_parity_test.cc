#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/exec/context.h"
#include "src/la/backend/backend.h"
#include "src/la/matrix.h"
#include "src/la/matrix_ops.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace openima::la {
namespace {

/// The blocked/parallel GEMM promises bit-identical results to the naive
/// i-k-j reference loop, so parity here is exact float equality — not
/// near-equality — on every input class, including NaN/Inf (where we
/// require matching special-value category: same bits is too strict across
/// NaN payload choices, but NaN must stay NaN and Inf must stay Inf).
void ExpectExact(const Matrix& got, const Matrix& want,
                 const std::string& label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (int64_t i = 0; i < got.size(); ++i) {
    const float g = got.data()[i];
    const float w = want.data()[i];
    if (std::isnan(w)) {
      EXPECT_TRUE(std::isnan(g)) << label << " flat index " << i;
    } else {
      EXPECT_EQ(g, w) << label << " flat index " << i;
    }
  }
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    // Varied magnitudes: reassociated accumulation would show up instantly.
    m.data()[i] = static_cast<float>(rng->Normal() *
                                     std::pow(10.0, rng->Uniform(-2.0, 2.0)));
  }
  return m;
}

/// ~70% exact zeros: the seed kernel had an `if (av == 0.0f) continue;`
/// shortcut that skipped k-terms and silently dropped NaN/Inf columns; the
/// rewritten kernels must process every term.
Matrix ZeroHeavyMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Uniform() < 0.7 ? 0.0f
                                       : static_cast<float>(rng->Normal());
  }
  return m;
}

void CheckAllProducts(const Matrix& a, const Matrix& b,
                      const exec::Context* ctx, const std::string& label) {
  const Matrix want = MatmulReference(a, b);
  ExpectExact(Matmul(a, b, ctx), want, label + " Matmul");
  // TN/NT parity against the reference on explicitly transposed operands.
  const Matrix at = Transpose(a);
  const Matrix bt = Transpose(b);
  ExpectExact(MatmulTN(at, b, ctx), want, label + " MatmulTN");
  ExpectExact(MatmulNT(a, bt, ctx), want, label + " MatmulNT");
  // Accumulate: C starts non-zero; reference adds alpha * (a@b) term-by-term
  // in the same i-k-j order, so exact equality still holds.
  Rng rng(7);
  Matrix c0(a.rows(), b.cols());
  for (int64_t i = 0; i < c0.size(); ++i) {
    c0.data()[i] = static_cast<float>(rng.Normal());
  }
  Matrix got = c0;
  MatmulAccumulate(a, b, 0.5f, &got, ctx);
  Matrix want_acc = c0;
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = want_acc.Row(i);
    for (int p = 0; p < a.cols(); ++p) {
      const float av = 0.5f * arow[p];
      const float* brow = b.Row(p);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  ExpectExact(got, want_acc, label + " MatmulAccumulate");
}

/// Exact-to-the-naive-reference parity is a *scalar backend* contract (the
/// reference loop is plain mul+add; the avx2 backend's FMA contraction is
/// legitimately different bits), so this fixture pins the scalar backend.
/// The avx2 backend is covered by the BackendSuite tests below: bit-exact
/// where the backend contract promises it (RowSum/RowMax/RowArgmax/elu
/// backward), tolerance-bounded where it doesn't (GEMM, distance, exp).
class KernelParityTest : public ::testing::TestWithParam<int> {
 protected:
  KernelParityTest() {
    ctx_.set_kernel_backend(backend::ScalarBackend());
    serial_.set_kernel_backend(backend::ScalarBackend());
  }
  exec::Context ctx_{GetParam()};
  exec::Context serial_{1};
};

TEST_P(KernelParityTest, GemmMatchesReferenceOnRandomInputs) {
  Rng rng(42);
  // Shapes straddling the kMr=4 / kNr=16 / kKc=512 tile boundaries.
  const int shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 16},
                           {5, 17, 33}, {64, 64, 64}, {70, 530, 19},
                           {33, 700, 40}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    CheckAllProducts(a, b, &ctx_,
                     StrFormat("random %dx%dx%d", s[0], s[1], s[2]));
  }
}

TEST_P(KernelParityTest, GemmMatchesReferenceOnZeroHeavyInputs) {
  Rng rng(43);
  const Matrix a = ZeroHeavyMatrix(37, 65, &rng);
  const Matrix b = ZeroHeavyMatrix(65, 29, &rng);
  CheckAllProducts(a, b, &ctx_, "zero-heavy");
}

TEST_P(KernelParityTest, GemmPropagatesNanAndInf) {
  Rng rng(44);
  Matrix a = ZeroHeavyMatrix(19, 40, &rng);
  Matrix b = RandomMatrix(40, 23, &rng);
  // Specials parked on zero-heavy rows/cols: the seed shortcut would have
  // skipped `0 * Inf` (= NaN) terms entirely.
  a(2, 11) = std::numeric_limits<float>::quiet_NaN();
  a(7, 0) = std::numeric_limits<float>::infinity();
  a(12, 39) = -std::numeric_limits<float>::infinity();
  b(5, 3) = std::numeric_limits<float>::quiet_NaN();
  b(30, 22) = std::numeric_limits<float>::infinity();
  CheckAllProducts(a, b, &ctx_, "nan-inf");

  // Targeted check: a zero in A against an Inf in B must produce NaN.
  Matrix za(1, 2);
  za(0, 0) = 0.0f;
  za(0, 1) = 1.0f;
  Matrix zb(2, 1);
  zb(0, 0) = std::numeric_limits<float>::infinity();
  zb(1, 0) = 2.0f;
  EXPECT_TRUE(std::isnan(Matmul(za, zb, &ctx_)(0, 0)))
      << "0 * Inf term must not be skipped";
  EXPECT_TRUE(std::isnan(MatmulReference(za, zb)(0, 0)));
}

TEST_P(KernelParityTest, RowKernelsMatchSerialAcrossThreadCounts) {
  Rng rng(45);
  const Matrix m = RandomMatrix(101, 13, &rng);
  exec::Context& serial = serial_;
  // Row-parallel kernels only split work across rows; each row's math is
  // unchanged, so outputs are bit-identical to the single-thread path.
  ExpectExact(RowSoftmax(m, &ctx_), RowSoftmax(m, &serial), "RowSoftmax");
  ExpectExact(RowLogSoftmax(m, &ctx_), RowLogSoftmax(m, &serial),
              "RowLogSoftmax");
  ExpectExact(Transpose(m, &ctx_), Transpose(m, &serial), "Transpose");

  const Matrix centers = RandomMatrix(7, 13, &rng);
  ExpectExact(PairwiseSquaredDistances(m, centers, &ctx_),
              PairwiseSquaredDistances(m, centers, &serial),
              "PairwiseSquaredDistances");

  std::vector<int> rows;
  for (int i = 0; i < m.rows(); i += 3) rows.push_back(i);
  ExpectExact(GatherRows(m, rows, &ctx_), GatherRows(m, rows, &serial),
              "GatherRows");

  Matrix n1 = m;
  Matrix n4 = m;
  RowL2NormalizeInPlace(&n1, 1e-12f, &serial);
  RowL2NormalizeInPlace(&n4, 1e-12f, &ctx_);
  ExpectExact(n4, n1, "RowL2NormalizeInPlace");
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, KernelParityTest,
                         ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Per-backend contract suite (`ctest -L backend`). Each registered backend
// (scalar always; avx2 when compiled in and the CPU supports it) must
// honor the KernelBackend determinism contract: partition-invariant GEMM,
// bit-identical row reductions across backends (RowSum/RowMax/RowArgmax
// including tie-breaking and NaN semantics), and tolerance-bounded drift
// for the FMA/polynomial-exp kernels.
// ---------------------------------------------------------------------------

class BackendSuite
    : public ::testing::TestWithParam<const backend::KernelBackend*> {
 protected:
  const backend::KernelBackend& be() const { return *GetParam(); }
  const backend::KernelBackend& scalar() const {
    return *backend::ScalarBackend();
  }
};

TEST_P(BackendSuite, GemmIsPartitionInvariantAcrossThreadCounts) {
  Rng rng(52);
  // Shapes whose row counts are not multiples of the kMr=4 tile: a row can
  // land in a full tile under one thread partition and an edge tile under
  // another, and the backend must still produce the same bits (the avx2
  // edge tile uses scalar fmaf for exactly this reason).
  const int shapes[][3] = {{5, 17, 33}, {7, 64, 16}, {70, 530, 19},
                           {33, 700, 40}, {127, 96, 96}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    exec::Context c1(1), c2(2), c4(4);
    c1.set_kernel_backend(&be());
    c2.set_kernel_backend(&be());
    c4.set_kernel_backend(&be());
    const Matrix want = Matmul(a, b, &c1);
    const std::string label = StrFormat("%s %dx%dx%d", be().name(), s[0],
                                        s[1], s[2]);
    ExpectExact(Matmul(a, b, &c2), want, label + " threads=2");
    ExpectExact(Matmul(a, b, &c4), want, label + " threads=4");
  }
}

TEST_P(BackendSuite, GemmMatchesDoubleReferenceWithinAccumulationBound) {
  Rng rng(53);
  const int m = 33, k = 530, n = 19;
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  exec::Context ctx(2);
  ctx.set_kernel_backend(&be());
  const Matrix got = Matmul(a, b, &ctx);
  // Every backend — whatever its contraction choices — must stay within
  // the classic float-accumulation error bound of the true (double) dot
  // product: |err| <= eps * (k + 8) * sum |a_p b_p|, doubled for margin.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = 0.0, absdot = 0.0;
      for (int p = 0; p < k; ++p) {
        const double t = static_cast<double>(a(i, p)) * b(p, j);
        dot += t;
        absdot += std::abs(t);
      }
      const double bound =
          2.0 * std::numeric_limits<float>::epsilon() * (k + 8) * absdot;
      EXPECT_NEAR(got(i, j), dot, bound)
          << be().name() << " element (" << i << ", " << j << ")";
    }
  }
}

TEST_P(BackendSuite, RowSumAndRowMaxBitIdenticalToScalar) {
  Rng rng(54);
  const int64_t sizes[] = {1, 3, 7, 8, 9, 15, 16, 33, 100, 1001};
  for (const int64_t n : sizes) {
    std::vector<float> row(static_cast<size_t>(n));
    for (auto& v : row) {
      v = static_cast<float>(rng.Normal() *
                             std::pow(10.0, rng.Uniform(-3.0, 3.0)));
    }
    const double want_sum = scalar().RowSum(row.data(), n);
    const double got_sum = be().RowSum(row.data(), n);
    EXPECT_EQ(std::bit_cast<std::int64_t>(got_sum),
              std::bit_cast<std::int64_t>(want_sum))
        << be().name() << " RowSum n=" << n;
    EXPECT_EQ(be().RowMax(row.data(), n), scalar().RowMax(row.data(), n))
        << be().name() << " RowMax n=" << n;
    EXPECT_EQ(be().RowArgmax(row.data(), n),
              scalar().RowArgmax(row.data(), n))
        << be().name() << " RowArgmax n=" << n;
  }
}

TEST_P(BackendSuite, RowArgmaxBreaksTiesTowardLowestIndex) {
  // Duplicated maxima across vector-lane and tail boundaries: every
  // backend must return the first occurrence, like a sequential
  // `p[j] > p[best]` scan.
  std::vector<float> row(40, 0.0f);
  row[2] = row[5] = row[9] = row[17] = row[39] = 7.5f;
  EXPECT_EQ(be().RowArgmax(row.data(), 40), 2) << be().name();
  // Tie landing in the scalar tail (indices 32..39 of n=40).
  std::vector<float> tail_tie(40, 1.0f);
  tail_tie[33] = tail_tie[38] = 2.0f;
  EXPECT_EQ(be().RowArgmax(tail_tie.data(), 40), 33) << be().name();
  // All-equal rows pick index 0 at any length.
  for (const int64_t n : {1, 7, 8, 40}) {
    std::vector<float> flat(static_cast<size_t>(n), 3.0f);
    EXPECT_EQ(be().RowArgmax(flat.data(), n), 0)
        << be().name() << " n=" << n;
  }
  // -inf rows are valid: everything ties at -inf, index 0 wins.
  std::vector<float> ninf(24, -std::numeric_limits<float>::infinity());
  EXPECT_EQ(be().RowArgmax(ninf.data(), 24), 0) << be().name();
  EXPECT_EQ(be().RowMax(ninf.data(), 24),
            -std::numeric_limits<float>::infinity())
      << be().name();
}

TEST_P(BackendSuite, RowMaxAndArgmaxNanSemanticsMatchScalar) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // NaN at p[0] is the one position where NaN wins: the scalar kernels
  // seed from p[0] and every later `acc < p` comparison is false.
  std::vector<float> lead(20, 1.0f);
  lead[0] = nan;
  lead[7] = 9.0f;
  EXPECT_TRUE(std::isnan(be().RowMax(lead.data(), 20))) << be().name();
  EXPECT_EQ(be().RowArgmax(lead.data(), 20), 0) << be().name();
  // Interior NaNs never win (comparisons against NaN are false), and the
  // exact value RowMax reports is position-dependent (a NaN-poisoned lane
  // drops its later elements) — pinned as "bit-identical to scalar", not
  // as a nominal max. RowArgmax must agree with the sequential scan.
  Rng rng(55);
  for (const int64_t n : {9, 24, 40, 100}) {
    for (const int64_t pos : {1L, 3L, 8L, n - 1}) {
      std::vector<float> row(static_cast<size_t>(n));
      for (auto& v : row) v = static_cast<float>(rng.Normal());
      row[static_cast<size_t>(pos)] = nan;
      const float want = scalar().RowMax(row.data(), n);
      const float got = be().RowMax(row.data(), n);
      EXPECT_EQ(std::bit_cast<std::int32_t>(got),
                std::bit_cast<std::int32_t>(want))
          << be().name() << " RowMax n=" << n << " nan at " << pos;
      EXPECT_EQ(be().RowArgmax(row.data(), n),
                scalar().RowArgmax(row.data(), n))
          << be().name() << " RowArgmax n=" << n << " nan at " << pos;
    }
  }
}

TEST_P(BackendSuite, ExpShiftedStaysWithinUlpOfScalar) {
  Rng rng(56);
  const int64_t n = 1003;  // exercises the vector tail
  std::vector<float> in(static_cast<size_t>(n));
  for (auto& v : in) v = static_cast<float>(rng.Uniform(-20.0, 1.0));
  std::vector<float> want(static_cast<size_t>(n)), got(static_cast<size_t>(n));
  scalar().ExpShifted(in.data(), 0.5f, want.data(), n);
  be().ExpShifted(in.data(), 0.5f, got.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    const std::int32_t ulps = std::abs(std::bit_cast<std::int32_t>(got[i]) -
                                       std::bit_cast<std::int32_t>(want[i]));
    EXPECT_LE(ulps, 4) << be().name() << " index " << i << " in=" << in[i];
  }
}

TEST_P(BackendSuite, ExpansionDistanceNonNegativeAndNearScalar) {
  Rng rng(57);
  for (const int d : {1, 7, 8, 9, 64, 129}) {
    std::vector<float> x(static_cast<size_t>(d)), y(static_cast<size_t>(d));
    double xs = 0.0, ys = 0.0;
    for (int j = 0; j < d; ++j) {
      x[static_cast<size_t>(j)] = static_cast<float>(rng.Normal());
      y[static_cast<size_t>(j)] = static_cast<float>(rng.Normal());
      xs += static_cast<double>(x[static_cast<size_t>(j)]) *
            x[static_cast<size_t>(j)];
      ys += static_cast<double>(y[static_cast<size_t>(j)]) *
            y[static_cast<size_t>(j)];
    }
    const float xsq = static_cast<float>(xs), ysq = static_cast<float>(ys);
    const float want =
        scalar().ExpansionSquaredDistance(x.data(), y.data(), d, xsq, ysq);
    const float got =
        be().ExpansionSquaredDistance(x.data(), y.data(), d, xsq, ysq);
    EXPECT_GE(got, 0.0f) << be().name() << " d=" << d;
    // FMA-vs-scalar dot drift is bounded by the d-term accumulation error
    // at the squared-norms scale; the expansion formula's cancellation
    // means a relative bound on the *result* would be meaningless.
    const float scale = xsq + ysq;
    const float tol =
        static_cast<float>(d + 8) * std::numeric_limits<float>::epsilon() *
        scale;
    EXPECT_NEAR(got, want, tol) << be().name() << " d=" << d;
    // Self-distance must be (near) zero, never negative.
    EXPECT_LE(be().ExpansionSquaredDistance(x.data(), x.data(), d, xsq, xsq),
              static_cast<float>(d + 8) *
                  std::numeric_limits<float>::epsilon() * xsq)
        << be().name() << " self d=" << d;
  }
}

TEST_P(BackendSuite, AddBiasEluRowsContract) {
  Rng rng(58);
  const int64_t n = 37;  // vector blocks + tail
  const float alpha = 1.0f;
  std::vector<float> x(static_cast<size_t>(n)), b(static_cast<size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-4.0, 4.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-0.5, 0.5));
  std::vector<float> want = x, got = x;
  scalar().AddBiasEluRow(want.data(), b.data(), alpha, n);
  be().AddBiasEluRow(got.data(), b.data(), alpha, n);
  for (int64_t j = 0; j < n; ++j) {
    if (want[j] > 0.0f) {
      // Positive branch is a plain add — exact in every backend.
      EXPECT_EQ(got[j], want[j]) << be().name() << " index " << j;
    } else {
      // Negative branch: libm exp (scalar) vs FastExp (avx2); elu outputs
      // lie in (-alpha, 0], so an absolute bound is the right gate.
      EXPECT_NEAR(got[j], want[j], 1e-6f) << be().name() << " index " << j;
    }
  }
  // The backward is mul/add only: bit-identical across backends, for
  // every need_x/need_b combination.
  std::vector<float> g(static_cast<size_t>(n));
  for (auto& v : g) v = static_cast<float>(rng.Normal());
  std::vector<float> dx_want(static_cast<size_t>(n), 0.25f);
  std::vector<float> db_want(static_cast<size_t>(n), -0.5f);
  std::vector<float> dx_got = dx_want, db_got = db_want;
  scalar().AddBiasEluBackwardRow(g.data(), want.data(), alpha, n,
                                 dx_want.data(), db_want.data());
  be().AddBiasEluBackwardRow(g.data(), want.data(), alpha, n, dx_got.data(),
                             db_got.data());
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(dx_got[j], dx_want[j]) << be().name() << " dx index " << j;
    EXPECT_EQ(db_got[j], db_want[j]) << be().name() << " db index " << j;
  }
  std::vector<float> db_only_want(static_cast<size_t>(n), 0.0f);
  std::vector<float> db_only_got(static_cast<size_t>(n), 0.0f);
  scalar().AddBiasEluBackwardRow(g.data(), want.data(), alpha, n, nullptr,
                                 db_only_want.data());
  be().AddBiasEluBackwardRow(g.data(), want.data(), alpha, n, nullptr,
                             db_only_got.data());
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(db_only_got[j], db_only_want[j])
        << be().name() << " db-only index " << j;
  }
}

TEST_P(BackendSuite, GatherScatterAxpyBitIdenticalToScalar) {
  // The sampled-training kernels are copies (GatherRows), plain adds
  // (ScatterAddRows) and separately-rounded mul+add (AxpyRow) — all three
  // are bit-identical across backends by contract, at every width that
  // straddles the 8-lane blocks and the scalar tail.
  Rng rng(59);
  for (const int64_t n : {1, 7, 8, 9, 23, 64, 129}) {
    const int64_t src_rows = 11;
    std::vector<float> src(static_cast<size_t>(src_rows * n));
    for (auto& v : src) {
      v = static_cast<float>(rng.Normal() *
                             std::pow(10.0, rng.Uniform(-2.0, 2.0)));
    }
    // Gather with repeats and out-of-order rows.
    const std::vector<int> gidx = {3, 0, 10, 3, 7, 1};
    const int64_t gn = static_cast<int64_t>(gidx.size());
    std::vector<float> gwant(static_cast<size_t>(gn * n), -1.0f);
    std::vector<float> ggot = gwant;
    scalar().GatherRows(src.data(), n, gidx.data(), gn, n, gwant.data(), n);
    be().GatherRows(src.data(), n, gidx.data(), gn, n, ggot.data(), n);
    EXPECT_EQ(ggot, gwant) << be().name() << " GatherRows n=" << n;

    // Scatter-add with a repeated destination row (3 twice): the serial
    // ascending-r order makes the repeat well-defined.
    std::vector<float> swant(static_cast<size_t>(src_rows * n), 0.5f);
    std::vector<float> sgot = swant;
    scalar().ScatterAddRows(gwant.data(), n, gidx.data(), gn, n,
                            swant.data(), n);
    be().ScatterAddRows(gwant.data(), n, gidx.data(), gn, n, sgot.data(), n);
    for (size_t i = 0; i < swant.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::int32_t>(sgot[i]),
                std::bit_cast<std::int32_t>(swant[i]))
          << be().name() << " ScatterAddRows n=" << n << " flat " << i;
    }

    // Axpy: the avx2 path must use separate mul+add (no FMA contraction)
    // to stay bit-identical to the -ffp-contract=off scalar loop.
    std::vector<float> x(static_cast<size_t>(n)), ywant(static_cast<size_t>(n));
    for (auto& v : x) v = static_cast<float>(rng.Normal());
    for (auto& v : ywant) v = static_cast<float>(rng.Normal());
    std::vector<float> ygot = ywant;
    scalar().AxpyRow(0.37f, x.data(), ywant.data(), n);
    be().AxpyRow(0.37f, x.data(), ygot.data(), n);
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(std::bit_cast<std::int32_t>(ygot[static_cast<size_t>(j)]),
                std::bit_cast<std::int32_t>(ywant[static_cast<size_t>(j)]))
          << be().name() << " AxpyRow n=" << n << " index " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendSuite,
    ::testing::ValuesIn(backend::RegisteredBackends()),
    [](const ::testing::TestParamInfo<const backend::KernelBackend*>& info) {
      return std::string(info.param->name());
    });

}  // namespace
}  // namespace openima::la
