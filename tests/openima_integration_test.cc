#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/openima.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/metrics/clustering_accuracy.h"

namespace openima::core {
namespace {

struct Fixture {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

Fixture MakeFixture(uint64_t seed = 1, int nodes = 240, int classes = 4) {
  graph::SbmConfig c;
  c.num_nodes = nodes;
  c.num_classes = classes;
  c.feature_dim = 12;
  c.avg_degree = 10.0;
  c.homophily = 0.85;
  c.feature_noise = 1.2;
  auto ds = graph::GenerateSbm(c, seed, "integration");
  EXPECT_TRUE(ds.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 15;
  so.val_per_class = 8;
  auto split = graph::MakeOpenWorldSplit(*ds, so, seed + 1);
  EXPECT_TRUE(split.ok());
  return {std::move(ds).value(), std::move(split).value()};
}

OpenImaConfig SmallConfig(const Fixture& fx) {
  OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = 10;
  config.batch_size = 256;
  config.lr = 5e-3f;
  return config;
}

std::vector<int> Gather(const std::vector<int>& values,
                        const std::vector<int>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (int v : nodes) out.push_back(values[static_cast<size_t>(v)]);
  return out;
}

double TestAccuracy(const Fixture& fx, const std::vector<int>& preds) {
  auto acc = metrics::EvaluateOpenWorld(
      Gather(preds, fx.split.test_nodes),
      Gather(fx.split.remapped_labels, fx.split.test_nodes),
      fx.split.num_seen, fx.split.num_total_classes());
  EXPECT_TRUE(acc.ok());
  return acc->all;
}

TEST(OpenImaIntegrationTest, TrainingLearnsAboveChance) {
  Fixture fx = MakeFixture();
  OpenImaModel model(SmallConfig(fx), fx.dataset.feature_dim(), 99);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  auto preds = model.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok());
  const double acc = TestAccuracy(fx, *preds);
  // Chance on 4 balanced classes is 0.25; a trained model must beat it
  // comfortably on this easy synthetic graph.
  EXPECT_GT(acc, 0.45) << "trained accuracy " << acc;
  EXPECT_GT(model.train_stats().epoch_losses.size(), 0u);
}

TEST(OpenImaIntegrationTest, TrainingImprovesOverUntrained) {
  Fixture fx = MakeFixture(2);
  OpenImaConfig config = SmallConfig(fx);

  OpenImaModel untrained(config, fx.dataset.feature_dim(), 7);
  auto before = untrained.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(before.ok());

  OpenImaModel trained(config, fx.dataset.feature_dim(), 7);
  ASSERT_TRUE(trained.Train(fx.dataset, fx.split).ok());
  auto after = trained.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(after.ok());

  EXPECT_GE(TestAccuracy(fx, *after), TestAccuracy(fx, *before) - 0.02);
}

TEST(OpenImaIntegrationTest, DeterministicGivenSeed) {
  Fixture fx = MakeFixture(3);
  OpenImaConfig config = SmallConfig(fx);
  config.epochs = 4;
  OpenImaModel a(config, fx.dataset.feature_dim(), 42);
  OpenImaModel b(config, fx.dataset.feature_dim(), 42);
  ASSERT_TRUE(a.Train(fx.dataset, fx.split).ok());
  ASSERT_TRUE(b.Train(fx.dataset, fx.split).ok());
  auto pa = a.Predict(fx.dataset, fx.split);
  auto pb = b.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(*pa, *pb);
}

TEST(OpenImaIntegrationTest, AblationConfigsAllTrain) {
  Fixture fx = MakeFixture(4, 160, 4);
  // The 7 Table V rows: each loss-component subset must train and predict.
  struct Row {
    bool emb, logit, ce, pl;
  };
  const Row rows[] = {
      {false, false, true, true}, {true, false, false, true},
      {false, true, false, true}, {true, true, false, true},
      {true, false, true, true},  {false, true, true, true},
      {true, true, true, false},
  };
  for (const Row& r : rows) {
    OpenImaConfig config = SmallConfig(fx);
    config.epochs = 3;
    config.use_bpcl_emb = r.emb;
    config.use_bpcl_logit = r.logit;
    config.use_ce = r.ce;
    config.use_pseudo_labels = r.pl;
    OpenImaModel model(config, fx.dataset.feature_dim(), 5);
    ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
    auto preds = model.Predict(fx.dataset, fx.split);
    ASSERT_TRUE(preds.ok());
    EXPECT_EQ(preds->size(), static_cast<size_t>(fx.dataset.num_nodes()));
  }
}

TEST(OpenImaIntegrationTest, NoLossComponentsFails) {
  Fixture fx = MakeFixture(5, 160, 4);
  OpenImaConfig config = SmallConfig(fx);
  config.use_bpcl_emb = false;
  config.use_bpcl_logit = false;
  config.use_ce = false;
  OpenImaModel model(config, fx.dataset.feature_dim(), 6);
  EXPECT_FALSE(model.Train(fx.dataset, fx.split).ok());
}

TEST(OpenImaIntegrationTest, LargeGraphModePredictsWithHead) {
  Fixture fx = MakeFixture(6, 200, 4);
  OpenImaConfig config = SmallConfig(fx);
  config.large_graph_mode = true;
  config.epochs = 5;
  config.minibatch_kmeans_batch = 64;
  config.minibatch_kmeans_iterations = 20;
  OpenImaModel model(config, fx.dataset.feature_dim(), 8);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  auto preds = model.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok());
  // Head prediction: ids within [0, num_classes).
  for (int p : *preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, config.num_classes());
  }
  EXPECT_EQ(*preds, model.HeadPredict(fx.dataset));
}

TEST(OpenImaIntegrationTest, TrainTwiceRejected) {
  Fixture fx = MakeFixture(7, 160, 4);
  OpenImaConfig config = SmallConfig(fx);
  config.epochs = 1;
  OpenImaModel model(config, fx.dataset.feature_dim(), 9);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  EXPECT_FALSE(model.Train(fx.dataset, fx.split).ok());
}

TEST(OpenImaIntegrationTest, MismatchedConfigRejected) {
  Fixture fx = MakeFixture(8, 160, 4);
  OpenImaConfig config = SmallConfig(fx);
  config.num_seen = fx.split.num_seen + 1;
  config.num_novel = 1;
  OpenImaModel model(config, fx.dataset.feature_dim(), 10);
  EXPECT_FALSE(model.Train(fx.dataset, fx.split).ok());
}

TEST(OpenImaIntegrationTest, EmbeddingsShape) {
  Fixture fx = MakeFixture(9, 160, 4);
  OpenImaConfig config = SmallConfig(fx);
  OpenImaModel model(config, fx.dataset.feature_dim(), 11);
  la::Matrix emb = model.Embeddings(fx.dataset);
  EXPECT_EQ(emb.rows(), fx.dataset.num_nodes());
  EXPECT_EQ(emb.cols(), config.encoder.embedding_dim);
}

TEST(OpenImaIntegrationTest, GcnEncoderVariantTrains) {
  Fixture fx = MakeFixture(10, 200, 4);
  OpenImaConfig config = SmallConfig(fx);
  config.encoder.arch = nn::EncoderArch::kGcn;
  config.epochs = 8;
  OpenImaModel model(config, fx.dataset.feature_dim(), 12);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  auto preds = model.Predict(fx.dataset, fx.split);
  ASSERT_TRUE(preds.ok());
  EXPECT_GT(TestAccuracy(fx, *preds), 0.35);
}

TEST(OpenImaIntegrationTest, AlternativeClusterersTrainAndPredict) {
  Fixture fx = MakeFixture(11, 200, 4);
  for (auto kind :
       {ClustererKind::kSphericalKMeans, ClustererKind::kConstrainedKMeans,
        ClustererKind::kGmm}) {
    OpenImaConfig config = SmallConfig(fx);
    config.clusterer = kind;
    config.epochs = 6;
    OpenImaModel model(config, fx.dataset.feature_dim(), 13);
    ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok())
        << ClustererKindName(kind);
    auto preds = model.Predict(fx.dataset, fx.split);
    ASSERT_TRUE(preds.ok()) << ClustererKindName(kind);
    EXPECT_GT(TestAccuracy(fx, *preds), 0.3) << ClustererKindName(kind);
  }
}

}  // namespace
}  // namespace openima::core
