#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/encoder_with_head.h"
#include "src/core/novel_count.h"
#include "src/core/positive_sets.h"
#include "src/core/pseudo_labels.h"
#include "src/graph/synthetic.h"
#include "src/util/rng.h"

namespace openima::core {
namespace {

// ---------------------------------------------------------------------------
// Positive sets (Eq. 7 batch construction)
// ---------------------------------------------------------------------------

TEST(PositiveSetsTest, UnlabeledAnchorsGetTwinOnly) {
  auto pos = BuildPositiveSets({-1, -1, -1});
  ASSERT_EQ(pos.size(), 6u);
  EXPECT_EQ(pos[0], (std::vector<int>{3}));
  EXPECT_EQ(pos[3], (std::vector<int>{0}));
  EXPECT_EQ(pos[2], (std::vector<int>{5}));
  EXPECT_EQ(pos[5], (std::vector<int>{2}));
}

TEST(PositiveSetsTest, LabeledAnchorsGetAllSameLabel) {
  // Nodes 0 and 2 share label 1.
  auto pos = BuildPositiveSets({1, -1, 1});
  // Data points with label 1: 0, 2, 3, 5.
  EXPECT_EQ(pos[0], (std::vector<int>{2, 3, 5}));
  EXPECT_EQ(pos[3], (std::vector<int>{0, 2, 5}));
  // Unlabeled node 1: twin only.
  EXPECT_EQ(pos[1], (std::vector<int>{4}));
}

TEST(PositiveSetsTest, NoAnchorContainsItself) {
  auto pos = BuildPositiveSets({0, 0, 1, 1, -1});
  for (size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(std::count(pos[i].begin(), pos[i].end(), static_cast<int>(i)),
              0);
    EXPECT_FALSE(pos[i].empty());
  }
}

TEST(PositiveSetsTest, TwinAlwaysPositiveForLabeled) {
  auto pos = BuildPositiveSets({3, 7});
  // Anchor 0's twin is 2; they share label 3.
  EXPECT_NE(std::find(pos[0].begin(), pos[0].end(), 2), pos[0].end());
}

TEST(PositiveSetsTest, SymmetryOfPositivity) {
  auto pos = BuildPositiveSets({0, 1, 0, -1});
  for (size_t i = 0; i < pos.size(); ++i) {
    for (int j : pos[i]) {
      const auto& back = pos[static_cast<size_t>(j)];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(i)),
                back.end())
          << i << " -> " << j << " not symmetric";
    }
  }
}

// ---------------------------------------------------------------------------
// Bias-reduced pseudo labels
// ---------------------------------------------------------------------------

/// Embeddings with 3 tight blobs of 20 points: classes 0 (seen), 1, 2.
la::Matrix BlobEmbeddings(std::vector<int>* labels, Rng* rng,
                          double spread = 0.1) {
  la::Matrix emb(60, 2);
  labels->clear();
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      const int row = c * 20 + i;
      emb(row, 0) = centers[c][0] + static_cast<float>(rng->Normal(0, spread));
      emb(row, 1) = centers[c][1] + static_cast<float>(rng->Normal(0, spread));
      labels->push_back(c);
    }
  }
  return emb;
}

TEST(PseudoLabelsTest, SeparatedBlobsGetCorrectLabels) {
  Rng rng(1);
  std::vector<int> labels;
  la::Matrix emb = BlobEmbeddings(&labels, &rng);
  // Class 0 is seen; first 5 nodes are labeled.
  std::vector<int> train_nodes = {0, 1, 2, 3, 4};
  std::vector<int> train_labels(5, 0);
  PseudoLabelOptions options;
  options.num_clusters = 3;
  options.select_rate_pct = 100.0;
  auto result = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                                /*num_seen=*/1, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // All class-0 nodes must carry pseudo/manual label 0.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(result->labels[static_cast<size_t>(i)], 0);
  }
  // The two novel blobs get two distinct ids >= 1.
  std::set<int> novel_ids;
  for (int i = 20; i < 60; ++i) {
    EXPECT_GE(result->labels[static_cast<size_t>(i)], 1);
    novel_ids.insert(result->labels[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(novel_ids.size(), 2u);
  EXPECT_EQ(result->num_pseudo_labeled, 55);  // 60 - 5 labeled
}

TEST(PseudoLabelsTest, SelectionRateLimitsCount) {
  Rng rng(2);
  std::vector<int> labels;
  la::Matrix emb = BlobEmbeddings(&labels, &rng, /*spread=*/1.0);
  std::vector<int> train_nodes = {0, 1, 2};
  std::vector<int> train_labels(3, 0);
  PseudoLabelOptions options;
  options.num_clusters = 3;
  options.select_rate_pct = 50.0;
  auto result = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                                1, options, &rng);
  ASSERT_TRUE(result.ok());
  // At most 50% of 60 = 30 nodes are reliable; labeled nodes keep manual
  // labels regardless, so pseudo-labeled <= 30.
  EXPECT_LE(result->num_pseudo_labeled, 30);
  EXPECT_GT(result->num_pseudo_labeled, 0);
  // Unreliable nodes stay -1.
  int unlabeled = 0;
  for (int l : result->labels) unlabeled += l == -1;
  EXPECT_GE(unlabeled, 27);
}

TEST(PseudoLabelsTest, ManualLabelsAlwaysKept) {
  Rng rng(3);
  std::vector<int> labels;
  la::Matrix emb = BlobEmbeddings(&labels, &rng, 3.0);  // noisy
  std::vector<int> train_nodes = {0, 25, 45};  // one per blob
  std::vector<int> train_labels = {0, 0, 0};   // deliberately "wrong"
  PseudoLabelOptions options;
  options.num_clusters = 3;
  options.select_rate_pct = 10.0;
  auto result = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                                1, options, &rng);
  ASSERT_TRUE(result.ok());
  for (size_t t = 0; t < train_nodes.size(); ++t) {
    EXPECT_EQ(result->labels[static_cast<size_t>(train_nodes[t])], 0);
  }
}

TEST(PseudoLabelsTest, ConfidenceOrderingPrefersCentralNodes) {
  // Two blobs; one far outlier appended to blob 0. With a tight selection
  // budget the outlier must not receive a pseudo label.
  la::Matrix emb(11, 2);
  for (int i = 0; i < 5; ++i) {
    emb(i, 0) = 0.01f * static_cast<float>(i);
  }
  for (int i = 5; i < 10; ++i) {
    emb(i, 0) = 10.0f + 0.01f * static_cast<float>(i);
  }
  emb(10, 0) = 4.0f;  // outlier between blobs
  std::vector<int> train_nodes = {0};
  std::vector<int> train_labels = {0};
  PseudoLabelOptions options;
  options.num_clusters = 2;
  options.select_rate_pct = 80.0;  // 8 of 11 reliable
  Rng rng(4);
  auto result = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                                1, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels[10], -1) << "outlier must be filtered";
}

TEST(PseudoLabelsTest, RejectsBadOptions) {
  Rng rng(5);
  la::Matrix emb(10, 2);
  PseudoLabelOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(GenerateBiasReducedPseudoLabels(emb, {0}, {0}, 2, options, &rng)
                   .ok());
  options.num_clusters = 3;
  options.select_rate_pct = 120.0;
  EXPECT_FALSE(GenerateBiasReducedPseudoLabels(emb, {0}, {0}, 2, options, &rng)
                   .ok());
  options.select_rate_pct = 50.0;
  EXPECT_FALSE(
      GenerateBiasReducedPseudoLabels(emb, {0}, {0, 1}, 2, options, &rng).ok());
}

TEST(PseudoLabelsTest, WarmStartReproducesAndBadShapeFallsBackToCold) {
  Rng rng(18);
  std::vector<int> labels;
  la::Matrix emb = BlobEmbeddings(&labels, &rng);
  std::vector<int> train_nodes = {0, 1, 2, 3, 4};
  std::vector<int> train_labels(5, 0);
  PseudoLabelOptions options;
  options.num_clusters = 3;
  options.select_rate_pct = 100.0;
  auto cold = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                              1, options, &rng);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->centers.rows(), 3);
  EXPECT_EQ(cold->centers.cols(), 2);

  // Warm-starting from the previous refresh's centers reproduces the
  // labeling (well-separated blobs: the centers are already a fixed point).
  options.warm_start_centers = cold->centers;
  auto warm = GenerateBiasReducedPseudoLabels(emb, train_nodes, train_labels,
                                              1, options, &rng);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->labels, cold->labels);

  // Stale centers (wrong shape, e.g. after an embedding-dim change) must
  // degrade to a cold start, never an error.
  options.warm_start_centers = la::Matrix(3, 5);
  Rng rng2(18);
  auto fallback = GenerateBiasReducedPseudoLabels(
      emb, train_nodes, train_labels, 1, options, &rng2);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->centers.rows(), 3);
  EXPECT_EQ(fallback->centers.cols(), 2);
}

// ---------------------------------------------------------------------------
// Novel-class-count estimation (§V-E)
// ---------------------------------------------------------------------------

TEST(NovelCountTest, FindsTrueCountOnSeparatedBlobs) {
  Rng rng(6);
  std::vector<int> labels;
  la::Matrix emb = BlobEmbeddings(&labels, &rng, 0.2);
  NovelCountOptions options;
  options.num_seen = 1;  // blobs: 1 seen + 2 novel
  options.min_novel = 1;
  options.max_novel = 6;
  auto est = EstimateNovelClassCount(emb, options, &rng);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est->best_novel, 2);
  EXPECT_EQ(est->silhouettes.size(), 6u);
}

TEST(NovelCountTest, RejectsBadRange) {
  Rng rng(7);
  la::Matrix emb(10, 2);
  NovelCountOptions options;
  options.min_novel = 3;
  options.max_novel = 2;
  EXPECT_FALSE(EstimateNovelClassCount(emb, options, &rng).ok());
}

// ---------------------------------------------------------------------------
// EncoderWithHead
// ---------------------------------------------------------------------------

graph::Dataset TinyDataset() {
  graph::SbmConfig c;
  c.num_nodes = 40;
  c.num_classes = 2;
  c.feature_dim = 6;
  c.avg_degree = 6.0;
  auto ds = graph::GenerateSbm(c, 11, "tiny");
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(EncoderWithHeadTest, ShapesAndDeterminism) {
  Rng rng(8);
  nn::GatEncoderConfig enc;
  enc.in_dim = 6;
  enc.hidden_dim = 8;
  enc.embedding_dim = 5;
  enc.num_heads = 2;
  EncoderWithHead model(enc, /*num_classes=*/4, &rng);
  graph::Dataset ds = TinyDataset();

  la::Matrix emb = model.EvalEmbeddings(ds);
  EXPECT_EQ(emb.rows(), 40);
  EXPECT_EQ(emb.cols(), 5);
  la::Matrix logits = model.EvalLogits(ds);
  EXPECT_EQ(logits.cols(), 4);
  EXPECT_TRUE(model.EvalEmbeddings(ds) == emb) << "eval is deterministic";
  EXPECT_EQ(model.num_classes(), 4);
}

}  // namespace
}  // namespace openima::core
