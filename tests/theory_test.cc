#include <gtest/gtest.h>

#include <cmath>

#include "src/theory/two_gaussian.h"

namespace openima::theory {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.0), 0.1587, 1e-3);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-4);
  EXPECT_NEAR(NormalCdf(1.75), 0.9599, 1e-3);  // used in Eq. 36
}

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989, 1e-3);
  EXPECT_NEAR(NormalPdf(1.0), 0.2420, 1e-3);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-12);
}

TEST(ModelTest, AlphaGammaRoundTrip) {
  TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.0, 1.5, 0.1);
  EXPECT_NEAR(m.Alpha(), 2.0, 1e-9);
  EXPECT_NEAR(m.Gamma(), 1.5, 1e-9);
  EXPECT_NEAR(m.mu2 - m.mu1, 2.0 * (m.sigma1 + m.sigma2), 1e-9);
}

TEST(CentersTest, SymmetricModelHasSymmetricCenters) {
  TwoGaussianModel m;
  m.mu1 = -1.0;
  m.mu2 = 1.0;
  m.sigma1 = m.sigma2 = 0.3;
  const double s = 0.0;
  ClusterCenters c = ExpectedCenters(m, s);
  EXPECT_NEAR(c.theta1, -c.theta2, 1e-9);
  EXPECT_LT(c.theta1, 0.0);
  EXPECT_NEAR(H(m, 0.0), 0.0, 1e-9) << "midpoint is the fixed point";
}

TEST(CentersTest, TruncatedMeansBracketThreshold) {
  TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.0, 1.5);
  const double s = 0.5 * (m.mu1 + m.mu2);
  ClusterCenters c = ExpectedCenters(m, s);
  EXPECT_LT(c.theta1, s);
  EXPECT_GT(c.theta2, s);
}

TEST(FixedPointTest, LiesBetweenMeans) {
  for (double alpha : {1.6, 2.0, 2.5, 3.5}) {
    for (double gamma : {1.1, 1.5, 1.9}) {
      TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(alpha, gamma);
      auto s = SolveFixedPoint(m);
      ASSERT_TRUE(s.ok()) << "alpha=" << alpha << " gamma=" << gamma;
      EXPECT_GT(*s, m.mu1);
      EXPECT_LT(*s, m.mu2);
      EXPECT_NEAR(H(m, *s), 0.0, 1e-8);
    }
  }
}

TEST(FixedPointTest, HIsIncreasingNearMidpoint) {
  TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.0, 1.5);
  const double mid = 0.5 * (m.mu1 + m.mu2);
  const double eps = 0.02 * (m.mu2 - m.mu1);
  EXPECT_LT(H(m, mid - eps), H(m, mid + eps));
}

TEST(FixedPointTest, RejectsDegenerateModel) {
  TwoGaussianModel m;
  m.mu1 = 1.0;
  m.mu2 = 0.0;  // reversed
  EXPECT_FALSE(SolveFixedPoint(m).ok());
  m = TwoGaussianModel{};
  m.sigma1 = 0.0;
  EXPECT_FALSE(SolveFixedPoint(m).ok());
}

// Theorem 1 point (1): for 1.5 < alpha < 3 and 1 < gamma < 2, ACC2 is
// positively correlated with sigma1 — equivalently, raising the imbalance
// rate (shrinking sigma1) hurts the novel class.
TEST(Theorem1Test, Acc2IncreasesWithSigma1) {
  const double alpha = 2.0;
  const double sigma2 = 0.2;
  double prev_acc2 = -1.0;
  // sigma1 from 0.11 to 0.19 (gamma from ~1.82 down to ~1.05).
  for (double sigma1 = 0.11; sigma1 <= 0.19; sigma1 += 0.02) {
    TwoGaussianModel m;
    m.mu1 = 0.0;
    m.sigma1 = sigma1;
    m.sigma2 = sigma2;
    m.mu2 = alpha * (sigma1 + sigma2);  // hold alpha fixed
    auto s = SolveFixedPoint(m);
    ASSERT_TRUE(s.ok());
    const ExpectedAccuracy acc = ExpectedAccuracies(m, *s);
    EXPECT_GT(acc.acc2, prev_acc2)
        << "ACC2 must increase with sigma1 (sigma1=" << sigma1 << ")";
    prev_acc2 = acc.acc2;
  }
}

// Equivalent statement: ACC2 and the imbalance rate gamma are negatively
// correlated.
TEST(Theorem1Test, Acc2DecreasesWithGamma) {
  double prev_acc2 = 2.0;
  for (double gamma = 1.1; gamma < 2.0; gamma += 0.2) {
    TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.0, gamma, 0.1);
    // Here sigma1 is fixed and sigma2 = gamma * sigma1 grows; to test the
    // paper's claim we instead shrink sigma1 with sigma2 fixed:
    TwoGaussianModel m2;
    m2.sigma2 = 0.2;
    m2.sigma1 = 0.2 / gamma;
    m2.mu2 = 2.0 * (m2.sigma1 + m2.sigma2);
    auto s = SolveFixedPoint(m2);
    ASSERT_TRUE(s.ok());
    const double acc2 = ExpectedAccuracies(m2, *s).acc2;
    EXPECT_LT(acc2, prev_acc2) << "gamma=" << gamma;
    prev_acc2 = acc2;
    (void)m;
  }
}

// Theorem 1 point (2): alpha > 3 makes both accuracies at least 95%.
TEST(Theorem1Test, LargeAlphaGivesNearPerfectAccuracy) {
  for (double alpha : {3.1, 3.5, 4.0, 5.0}) {
    for (double gamma : {1.1, 1.5, 1.9}) {
      TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(alpha, gamma);
      auto s = SolveFixedPoint(m);
      ASSERT_TRUE(s.ok());
      const ExpectedAccuracy acc = ExpectedAccuracies(m, *s);
      EXPECT_GT(acc.acc1, 0.95) << "alpha=" << alpha << " gamma=" << gamma;
      EXPECT_GT(acc.acc2, 0.95) << "alpha=" << alpha << " gamma=" << gamma;
    }
  }
}

// The theory must predict what the real K-Means pipeline does.
TEST(MonteCarloTest, EmpiricalMatchesTheory) {
  Rng rng(123);
  TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.0, 1.8);
  auto s = SolveFixedPoint(m);
  ASSERT_TRUE(s.ok());
  const ExpectedAccuracy want = ExpectedAccuracies(m, *s);
  auto got = MonteCarloKMeansAccuracy(m, 20000, 1, &rng);
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR(got->acc1, want.acc1, 0.03);
  EXPECT_NEAR(got->acc2, want.acc2, 0.03);
}

TEST(MonteCarloTest, HigherDimensionsBehaveSimilarly) {
  Rng rng(124);
  TwoGaussianModel m = TwoGaussianModel::FromAlphaGamma(2.5, 1.5);
  auto got = MonteCarloKMeansAccuracy(m, 8000, 4, &rng);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->acc1, 0.9);
  EXPECT_GT(got->acc2, 0.8);
}

TEST(MonteCarloTest, RejectsBadArguments) {
  Rng rng(125);
  TwoGaussianModel m;
  EXPECT_FALSE(MonteCarloKMeansAccuracy(m, 2, 1, &rng).ok());
  EXPECT_FALSE(MonteCarloKMeansAccuracy(m, 100, 0, &rng).ok());
}

}  // namespace
}  // namespace openima::theory
