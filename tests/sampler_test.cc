#include "src/graph/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/matrix.h"
#include "src/metrics/clustering_accuracy.h"

/// The neighbor sampler promises a block that is a pure function of
/// (graph, seed, fanout, num_layers, seeds, tag) — bit-identical across
/// thread counts, pooled-vs-heap storage, and repeated calls on the same
/// sampler instance. These tests pin that contract with EXPECT_EQ (exact
/// equality, no tolerances), check the structural invariants every kernel
/// downstream relies on (dst-prefix locals, canonical edge order, transpose
/// round-trip, self-loop retention), and close with end-to-end sampled
/// OpenIMA runs under the same determinism lens as determinism_test.cc.
namespace openima {
namespace {

graph::Dataset MakeSbmDataset() {
  graph::SbmConfig sbm;
  sbm.num_nodes = 160;
  sbm.num_classes = 4;
  sbm.feature_dim = 12;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 3, "sampler");
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

std::vector<int> EveryThirdNode(const graph::Graph& g) {
  std::vector<int> seeds;
  for (int v = 0; v < g.num_nodes(); v += 3) seeds.push_back(v);
  return seeds;
}

void ExpectBlocksIdentical(const graph::SampledBlock& a,
                           const graph::SampledBlock& b) {
  EXPECT_EQ(a.input_nodes, b.input_nodes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    const graph::SampledLayer& la = a.layers[l];
    const graph::SampledLayer& lb = b.layers[l];
    EXPECT_EQ(la.num_dst, lb.num_dst) << "layer " << l;
    EXPECT_EQ(la.num_src, lb.num_src) << "layer " << l;
    EXPECT_EQ(la.row_ptr, lb.row_ptr) << "layer " << l;
    EXPECT_EQ(la.col_idx, lb.col_idx) << "layer " << l;
    EXPECT_EQ(la.src_row_ptr, lb.src_row_ptr) << "layer " << l;
    EXPECT_EQ(la.src_dst_idx, lb.src_dst_idx) << "layer " << l;
    EXPECT_EQ(la.src_edge_pos, lb.src_edge_pos) << "layer " << l;
  }
}

TEST(SamplerTest, SampleIsThreadCountInvariant) {
  const graph::Dataset dataset = MakeSbmDataset();
  const std::vector<int> seeds = EveryThirdNode(dataset.graph);
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = 4;
  sc.seed = 17;

  exec::Context c1(1);
  exec::Context c4(4);
  graph::NeighborSampler s1(&dataset.graph, sc);
  graph::NeighborSampler s4(&dataset.graph, sc);
  for (uint64_t tag = 0; tag < 5; ++tag) {
    const graph::SampledBlock b1 = s1.Sample(seeds, tag, &c1);
    const graph::SampledBlock b4 = s4.Sample(seeds, tag, &c4);
    ExpectBlocksIdentical(b1, b4);
  }
}

TEST(SamplerTest, RepeatedSamplesReuseWorkspaceWithoutLeakage) {
  // The sampler's dense map and scratch are recycled across calls; a call
  // after many unrelated draws must still match a fresh sampler's output.
  const graph::Dataset dataset = MakeSbmDataset();
  const std::vector<int> seeds = EveryThirdNode(dataset.graph);
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = 3;
  sc.seed = 23;

  graph::NeighborSampler warm(&dataset.graph, sc);
  std::vector<int> other_seeds = {1, 5, 9, 100, 159};
  for (uint64_t tag = 0; tag < 7; ++tag) warm.Sample(other_seeds, tag);

  graph::NeighborSampler fresh(&dataset.graph, sc);
  ExpectBlocksIdentical(warm.Sample(seeds, 42), fresh.Sample(seeds, 42));
}

TEST(SamplerTest, DifferentTagsDrawDifferentNeighborhoods) {
  const graph::Dataset dataset = MakeSbmDataset();
  const std::vector<int> seeds = EveryThirdNode(dataset.graph);
  graph::SamplerConfig sc;
  sc.num_layers = 1;
  sc.fanout = 3;
  sc.seed = 5;
  graph::NeighborSampler sampler(&dataset.graph, sc);
  const graph::SampledBlock b0 = sampler.Sample(seeds, 0);
  const graph::SampledBlock b1 = sampler.Sample(seeds, 1);
  // Identical draws for distinct tags would mean the counter is dead.
  const bool differ = b0.input_nodes != b1.input_nodes ||
                      b0.layers[0].col_idx != b1.layers[0].col_idx;
  EXPECT_TRUE(differ);
}

TEST(SamplerTest, ExhaustiveFanoutMatchesFullOneHopNeighborhood) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::Graph& g = dataset.graph;
  const std::vector<int> seeds = EveryThirdNode(g);
  graph::SamplerConfig sc;
  sc.num_layers = 1;
  sc.fanout = 0;  // exhaustive
  graph::NeighborSampler sampler(&dataset.graph, sc);
  const graph::SampledBlock block = sampler.Sample(seeds, 0);

  ASSERT_EQ(block.layers.size(), 1u);
  const graph::SampledLayer& layer = block.layers[0];
  ASSERT_EQ(layer.num_dst, static_cast<int>(seeds.size()));
  for (int i = 0; i < layer.num_dst; ++i) {
    // Rows are sorted by global id and neighbors are sorted ascending, so
    // the mapped row must equal Neighbors() element-for-element.
    std::vector<int> sampled;
    for (int64_t e = layer.row_ptr[static_cast<size_t>(i)];
         e < layer.row_ptr[static_cast<size_t>(i) + 1]; ++e) {
      sampled.push_back(
          block.input_nodes[static_cast<size_t>(
              layer.col_idx[static_cast<size_t>(e)])]);
    }
    auto [begin, end] = g.Neighbors(seeds[static_cast<size_t>(i)]);
    const std::vector<int> full(begin, end);
    EXPECT_EQ(sampled, full) << "dst " << seeds[static_cast<size_t>(i)];
  }
}

TEST(SamplerTest, StructuralInvariantsHold) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::Graph& g = dataset.graph;
  const std::vector<int> seeds = EveryThirdNode(g);
  graph::SamplerConfig sc;
  sc.num_layers = 2;
  sc.fanout = 4;
  sc.seed = 31;
  graph::NeighborSampler sampler(&dataset.graph, sc);
  const graph::SampledBlock block = sampler.Sample(seeds, 9);

  // The seeds are the first num_output() input nodes.
  ASSERT_EQ(block.num_output(), static_cast<int>(seeds.size()));
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(block.input_nodes[i], seeds[i]);
  }
  // Input nodes are distinct global ids.
  std::vector<int> sorted_inputs = block.input_nodes;
  std::sort(sorted_inputs.begin(), sorted_inputs.end());
  EXPECT_EQ(std::adjacent_find(sorted_inputs.begin(), sorted_inputs.end()),
            sorted_inputs.end());

  int prev_src = block.num_input();
  for (size_t l = 0; l < block.layers.size(); ++l) {
    const graph::SampledLayer& layer = block.layers[l];
    // Frontiers shrink inward: layer l+1's sources are layer l's dsts, and
    // every dst list is a prefix of its own src list.
    EXPECT_LE(layer.num_dst, layer.num_src);
    EXPECT_EQ(layer.num_src, prev_src);
    prev_src = layer.num_dst;

    ASSERT_EQ(layer.row_ptr.size(), static_cast<size_t>(layer.num_dst) + 1);
    EXPECT_EQ(layer.row_ptr.back(), layer.num_edges());
    for (int i = 0; i < layer.num_dst; ++i) {
      const int dst_global = block.input_nodes[static_cast<size_t>(i)];
      int prev_global = -1;
      bool has_self = false;
      for (int64_t e = layer.row_ptr[static_cast<size_t>(i)];
           e < layer.row_ptr[static_cast<size_t>(i) + 1]; ++e) {
        const int local = layer.col_idx[static_cast<size_t>(e)];
        ASSERT_GE(local, 0);
        ASSERT_LT(local, layer.num_src);
        const int global = block.input_nodes[static_cast<size_t>(local)];
        // Canonical edge order: strictly ascending global ids per row.
        EXPECT_GT(global, prev_global);
        prev_global = global;
        has_self |= global == dst_global;
        // Every sampled edge exists in the graph.
        auto [begin, end] = g.Neighbors(dst_global);
        EXPECT_TRUE(std::binary_search(begin, end, global));
      }
      // Self-loop retention: the graph carries self-loops, so every row
      // must keep its own node even when the fanout truncates.
      if (g.has_self_loops()) {
        EXPECT_TRUE(has_self) << "dst " << dst_global;
      }
      // Per-row budget: full neighborhood when it fits, else fanout draws
      // plus the pinned self edge.
      const int64_t row =
          layer.row_ptr[static_cast<size_t>(i) + 1] -
          layer.row_ptr[static_cast<size_t>(i)];
      const int degree = g.Degree(dst_global);
      if (degree <= sc.fanout) {
        EXPECT_EQ(row, degree);
      } else {
        EXPECT_LE(row, sc.fanout + (g.has_self_loops() ? 1 : 0));
      }
    }

    // Transpose round-trip: every dst-major edge appears exactly once in
    // the src-major view, under the right source, pointing back at the
    // right dst row, in ascending edge-position order.
    ASSERT_EQ(layer.src_row_ptr.size(),
              static_cast<size_t>(layer.num_src) + 1);
    EXPECT_EQ(layer.src_row_ptr.back(), layer.num_edges());
    ASSERT_EQ(layer.src_dst_idx.size(),
              static_cast<size_t>(layer.num_edges()));
    ASSERT_EQ(layer.src_edge_pos.size(),
              static_cast<size_t>(layer.num_edges()));
    for (int s = 0; s < layer.num_src; ++s) {
      int64_t prev_pos = -1;
      for (int64_t t = layer.src_row_ptr[static_cast<size_t>(s)];
           t < layer.src_row_ptr[static_cast<size_t>(s) + 1]; ++t) {
        const int64_t pos = layer.src_edge_pos[static_cast<size_t>(t)];
        EXPECT_GT(pos, prev_pos);
        prev_pos = pos;
        EXPECT_EQ(layer.col_idx[static_cast<size_t>(pos)], s);
        const int d = layer.src_dst_idx[static_cast<size_t>(t)];
        EXPECT_GE(pos, layer.row_ptr[static_cast<size_t>(d)]);
        EXPECT_LT(pos, layer.row_ptr[static_cast<size_t>(d) + 1]);
      }
    }
  }
}

struct SampledRunOutput {
  la::Matrix embeddings;
  std::vector<int> predictions;
  std::vector<double> epoch_losses;
};

core::OpenImaConfig SampledConfig(const graph::Dataset& dataset,
                                  const graph::OpenWorldSplit& split) {
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = split.num_seen;
  config.num_novel = split.num_novel;
  config.epochs = 4;
  config.lr = 5e-3f;
  config.sampled_training = true;
  config.sample_fanout = 4;
  config.batch_nodes = 48;
  return config;
}

SampledRunOutput RunSampled(const graph::Dataset& dataset,
                            const graph::OpenWorldSplit& split,
                            core::OpenImaConfig config) {
  core::OpenImaModel model(config, dataset.feature_dim(), 99);
  EXPECT_TRUE(model.Train(dataset, split).ok());
  SampledRunOutput out;
  out.embeddings = model.Embeddings(dataset);
  auto preds = model.Predict(dataset, split);
  EXPECT_TRUE(preds.ok());
  out.predictions = std::move(preds).value();
  out.epoch_losses = model.train_stats().epoch_losses;
  return out;
}

/// End-to-end: sampled-minibatch OpenIMA training (sample -> gather ->
/// sampled GAT forward -> Eq. 6 batch losses -> per-batch optimizer steps)
/// must produce the same bits under one and four threads.
TEST(SampledPipelineTest, SampledOpenImaIsThreadCountInvariant) {
  const graph::Dataset dataset = MakeSbmDataset();
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(dataset, so, 4);
  ASSERT_TRUE(split.ok());

  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx) {
    core::OpenImaConfig config = SampledConfig(dataset, *split);
    config.exec = ctx;
    return RunSampled(dataset, *split, config);
  };
  const SampledRunOutput r1 = run(&c1);
  const SampledRunOutput r4 = run(&c4);
  EXPECT_TRUE(r1.embeddings == r4.embeddings)
      << "sampled-training embeddings differ across thread counts";
  EXPECT_EQ(r1.predictions, r4.predictions);
  EXPECT_EQ(r1.epoch_losses, r4.epoch_losses);
}

/// Pooled vs plain-heap storage must not change sampled-training results:
/// the per-batch tape recycling and pooled scratch are storage-only.
TEST(SampledPipelineTest, SampledOpenImaIsMemoryPoolInvariant) {
  const graph::Dataset dataset = MakeSbmDataset();
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(dataset, so, 4);
  ASSERT_TRUE(split.ok());

  auto run = [&](bool pooled) {
    core::OpenImaConfig config = SampledConfig(dataset, *split);
    config.use_memory_pool = pooled;
    return RunSampled(dataset, *split, config);
  };
  const SampledRunOutput pooled = run(true);
  const SampledRunOutput heap = run(false);
  EXPECT_TRUE(pooled.embeddings == heap.embeddings)
      << "sampled-training embeddings differ between pooled and heap";
  EXPECT_EQ(pooled.predictions, heap.predictions);
  EXPECT_EQ(pooled.epoch_losses, heap.epoch_losses);
}

}  // namespace
}  // namespace openima
