#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/backend/backend.h"
#include "src/la/matrix.h"
#include "src/obs/json.h"
#include "src/obs/telemetry.h"

/// Determinism contract of the data-parallel trainer (DESIGN.md §2.8):
/// sharding each round of up to W consecutive sampled microbatches across W
/// persistent replicas, tree-reducing their gradients in a fixed topology
/// and taking one Adam step per round must be BIT-identical to running the
/// same schedule serially on the primary model
/// (config.data_parallel_reference) — for any worker count including 1,
/// pooled or heap storage, any thread count, and every registered kernel
/// backend. Everything here is EXPECT_EQ / byte equality, no tolerances;
/// the telemetry JSONL files of the two modes are compared as raw bytes so
/// the pipelined pseudo-label refresh schedule (snapshot epochs, refresh
/// flags, quality columns) is pinned too.
namespace openima {
namespace {

graph::Dataset MakeSbmDataset() {
  graph::SbmConfig sbm;
  sbm.num_nodes = 160;
  sbm.num_classes = 4;
  sbm.feature_dim = 12;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 3, "dp");
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

graph::OpenWorldSplit MakeSplit(const graph::Dataset& dataset) {
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(dataset, so, 4);
  EXPECT_TRUE(split.ok());
  return std::move(split).value();
}

/// Sampled-training config exercising the full pipeline: 160 nodes in
/// batches of 48 gives 4 microbatches per epoch (so W=8 > num_batches is a
/// short-round edge case), warmup 1 + refresh-every 2 over 6 epochs drives
/// two pipelined refresh launch/swap cycles.
core::OpenImaConfig DpConfig(const graph::Dataset& dataset,
                             const graph::OpenWorldSplit& split) {
  core::OpenImaConfig config;
  config.encoder.in_dim = dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = split.num_seen;
  config.num_novel = split.num_novel;
  config.epochs = 6;
  config.lr = 5e-3f;
  config.sampled_training = true;
  config.sample_fanout = 4;
  config.batch_nodes = 48;
  config.pseudo_warmup_epochs = 1;
  config.pseudo_refresh_every = 2;
  return config;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct DpRunOutput {
  std::vector<double> epoch_losses;
  std::vector<double> epoch_ce;
  std::vector<double> epoch_bpcl_emb;
  std::vector<double> epoch_bpcl_logit;
  std::vector<double> epoch_grad_norms;
  std::vector<int> refresh_pseudo_counts;
  std::vector<double> refresh_pseudo_precision;
  la::Matrix embeddings;
  std::vector<int> predictions;
  std::string telemetry_bytes;
};

/// Trains one model under the global telemetry sink and collects every
/// surface the determinism contract covers.
DpRunOutput RunDp(const graph::Dataset& dataset,
                  const graph::OpenWorldSplit& split,
                  const core::OpenImaConfig& config,
                  const std::string& telemetry_name) {
  const std::string path = TempPath(telemetry_name);
  EXPECT_TRUE(obs::StartTelemetry(path).ok());
  core::OpenImaModel model(config, dataset.feature_dim(), 99);
  const Status trained = model.Train(dataset, split);
  EXPECT_TRUE(obs::StopTelemetry().ok());
  EXPECT_TRUE(trained.ok()) << trained.message();

  DpRunOutput out;
  const core::TrainStats& stats = model.train_stats();
  out.epoch_losses = stats.epoch_losses;
  out.epoch_ce = stats.epoch_ce_losses;
  out.epoch_bpcl_emb = stats.epoch_bpcl_emb_losses;
  out.epoch_bpcl_logit = stats.epoch_bpcl_logit_losses;
  out.epoch_grad_norms = stats.epoch_grad_norms;
  out.refresh_pseudo_counts = stats.refresh_pseudo_counts;
  out.refresh_pseudo_precision = stats.refresh_pseudo_precision;
  out.embeddings = model.Embeddings(dataset);
  auto preds = model.Predict(dataset, split);
  EXPECT_TRUE(preds.ok());
  if (preds.ok()) out.predictions = std::move(preds).value();
  out.telemetry_bytes = ReadFileBytes(path);
  EXPECT_FALSE(out.telemetry_bytes.empty());
  return out;
}

void ExpectIdentical(const DpRunOutput& a, const DpRunOutput& b,
                     const std::string& label) {
  EXPECT_EQ(a.epoch_losses, b.epoch_losses) << label;
  EXPECT_EQ(a.epoch_ce, b.epoch_ce) << label;
  EXPECT_EQ(a.epoch_bpcl_emb, b.epoch_bpcl_emb) << label;
  EXPECT_EQ(a.epoch_bpcl_logit, b.epoch_bpcl_logit) << label;
  EXPECT_EQ(a.epoch_grad_norms, b.epoch_grad_norms) << label;
  EXPECT_EQ(a.refresh_pseudo_counts, b.refresh_pseudo_counts) << label;
  EXPECT_EQ(a.refresh_pseudo_precision, b.refresh_pseudo_precision) << label;
  EXPECT_TRUE(a.embeddings == b.embeddings) << label << ": embeddings differ";
  EXPECT_EQ(a.predictions, b.predictions) << label;
  EXPECT_EQ(a.telemetry_bytes, b.telemetry_bytes)
      << label << ": telemetry JSONL differs";
}

// ---------------------------------------------------------------------------
// Tentpole contract: threaded == serial reference for every worker count.
// ---------------------------------------------------------------------------

TEST(DataParallelTest, ThreadedMatchesSerialReferenceForAllWorkerCounts) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  for (int workers : {1, 2, 4, 8}) {
    core::OpenImaConfig config = DpConfig(dataset, split);
    config.workers = workers;
    config.data_parallel_reference = false;
    const DpRunOutput threaded = RunDp(
        dataset, split, config, "dp_w" + std::to_string(workers) + ".jsonl");
    config.data_parallel_reference = true;
    const DpRunOutput reference = RunDp(
        dataset, split, config,
        "dp_ref_w" + std::to_string(workers) + ".jsonl");
    ExpectIdentical(threaded, reference, "W=" + std::to_string(workers));
  }
}

/// The round schedule itself depends on W (one Adam step per round of W
/// microbatches), so different worker counts are NOT expected to match each
/// other — only each threaded run against its own-W reference. Sanity-check
/// that the schedule axis is real: W=1 (step per microbatch) and W=4 (one
/// step per 4 microbatches) must diverge.
TEST(DataParallelTest, DifferentWorkerCountsAreDifferentSchedules) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.data_parallel_reference = true;
  config.workers = 1;
  const DpRunOutput w1 = RunDp(dataset, split, config, "dp_sched1.jsonl");
  config.workers = 4;
  const DpRunOutput w4 = RunDp(dataset, split, config, "dp_sched4.jsonl");
  EXPECT_NE(w1.epoch_losses, w4.epoch_losses);
}

/// With pseudo-labeling off there is no pipelined refresh, and W=1 rounds
/// are single microbatches with inv_round == 1 — the scaling op is skipped,
/// so the autograd graph is byte-identical to the PR 7 serial sampled
/// trainer's. All three paths (serial, threaded W=1, reference W=1) must
/// agree to the bit, telemetry included.
TEST(DataParallelTest, SingleWorkerMatchesSerialTrainerWithoutRefresh) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.use_pseudo_labels = false;

  config.workers = 0;
  const DpRunOutput serial = RunDp(dataset, split, config, "dp_serial.jsonl");
  config.workers = 1;
  config.data_parallel_reference = false;
  const DpRunOutput threaded = RunDp(dataset, split, config, "dp_t1.jsonl");
  config.data_parallel_reference = true;
  const DpRunOutput reference = RunDp(dataset, split, config, "dp_r1.jsonl");

  ExpectIdentical(serial, threaded, "serial vs threaded W=1");
  ExpectIdentical(serial, reference, "serial vs reference W=1");
}

// ---------------------------------------------------------------------------
// Composition axes: storage, thread count, kernel backend.
// ---------------------------------------------------------------------------

TEST(DataParallelTest, PooledAndHeapStorageAreBitIdentical) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.workers = 2;
  config.use_memory_pool = true;
  const DpRunOutput pooled = RunDp(dataset, split, config, "dp_pooled.jsonl");
  config.use_memory_pool = false;
  const DpRunOutput heap = RunDp(dataset, split, config, "dp_heap.jsonl");
  ExpectIdentical(pooled, heap, "pooled vs heap, threaded W=2");

  // And the heap runs still match their own serial reference.
  config.data_parallel_reference = true;
  const DpRunOutput heap_ref =
      RunDp(dataset, split, config, "dp_heap_ref.jsonl");
  ExpectIdentical(heap, heap_ref, "heap threaded vs heap reference");
}

TEST(DataParallelTest, ThreadCountOfPrimaryContextDoesNotChangeResults) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx, const std::string& name) {
    core::OpenImaConfig config = DpConfig(dataset, split);
    config.workers = 2;
    config.exec = ctx;
    return RunDp(dataset, split, config, name);
  };
  const DpRunOutput r1 = run(&c1, "dp_ctx1.jsonl");
  const DpRunOutput r4 = run(&c4, "dp_ctx4.jsonl");
  ExpectIdentical(r1, r4, "threaded W=2, 1 vs 4 primary threads");
}

/// Per registered backend (`ctest -L backend` composes with `-L parallel`):
/// threaded == reference with the backend pinned on the primary context —
/// replicas inherit the pin via la::backend::Resolve at replica setup.
TEST(DataParallelTest, EveryRegisteredBackendMatchesItsReference) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  for (const la::backend::KernelBackend* be :
       la::backend::RegisteredBackends()) {
    exec::Context ctx(1);
    ctx.set_kernel_backend(be);
    core::OpenImaConfig config = DpConfig(dataset, split);
    config.workers = 2;
    config.exec = &ctx;
    config.data_parallel_reference = false;
    const DpRunOutput threaded = RunDp(
        dataset, split, config, std::string("dp_be_") + be->name() + ".jsonl");
    config.data_parallel_reference = true;
    const DpRunOutput reference =
        RunDp(dataset, split, config,
              std::string("dp_be_ref_") + be->name() + ".jsonl");
    ExpectIdentical(threaded, reference, std::string("backend ") + be->name());
  }
}

// ---------------------------------------------------------------------------
// Pipelined refresh schedule.
// ---------------------------------------------------------------------------

/// Warmup 1 + refresh-every 2 over 6 epochs: launches at the epoch-1 and
/// epoch-3 boundaries, swaps applied at epochs 3 and 5 — so exactly two
/// refreshes land, and the telemetry `refresh_snapshot_epoch` column records
/// the one-refresh-period label lag (absent before the first swap, then the
/// launch epoch, strictly increasing and always behind the epoch).
TEST(DataParallelTest, PipelinedRefreshLagsByOnePeriod) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.workers = 2;
  const DpRunOutput out = RunDp(dataset, split, config, "dp_refresh.jsonl");
  EXPECT_EQ(out.refresh_pseudo_counts.size(), 2u);
  EXPECT_EQ(out.refresh_pseudo_precision.size(), 2u);

  auto records = obs::ReadJsonl(TempPath("dp_refresh.jsonl"));
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 6u);
  int last_snapshot = -1;
  for (size_t e = 0; e < records->size(); ++e) {
    const obs::json::Value* snap = records->at(e).Find("refresh_snapshot_epoch");
    if (e < 3) {
      EXPECT_EQ(snap, nullptr) << "no labels swapped in before epoch 3";
      continue;
    }
    ASSERT_NE(snap, nullptr) << "epoch " << e;
    const int epoch_of_labels = static_cast<int>(snap->AsInt());
    EXPECT_LT(epoch_of_labels, static_cast<int>(e))
        << "labels must come from a strictly earlier snapshot";
    EXPECT_GE(epoch_of_labels, last_snapshot);
    last_snapshot = epoch_of_labels;
  }
  EXPECT_EQ(last_snapshot, 3) << "final swap carries the epoch-3 snapshot";
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(DataParallelTest, RejectsNegativeWorkerCount) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.workers = -2;
  core::OpenImaModel model(config, dataset.feature_dim(), 99);
  EXPECT_FALSE(model.Train(dataset, split).ok());
}

TEST(DataParallelTest, RejectsWorkersWithoutSampledTraining) {
  const graph::Dataset dataset = MakeSbmDataset();
  const graph::OpenWorldSplit split = MakeSplit(dataset);
  core::OpenImaConfig config = DpConfig(dataset, split);
  config.sampled_training = false;
  config.workers = 2;
  core::OpenImaModel model(config, dataset.feature_dim(), 99);
  EXPECT_FALSE(model.Train(dataset, split).ok());
}

}  // namespace
}  // namespace openima
