#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/cluster/constrained_kmeans.h"
#include "src/cluster/gmm.h"
#include "src/cluster/kmeans.h"
#include "src/core/clusterer.h"
#include "src/la/matrix_ops.h"

namespace openima {
namespace {

/// Points on the unit circle in two angular blobs — the case where
/// Euclidean K-Means with unnormalized centers and spherical K-Means can
/// differ but both must separate the blobs.
la::Matrix CircleBlobs(int per, double angle_a, double angle_b, double spread,
                       Rng* rng, std::vector<int>* labels) {
  la::Matrix points(2 * per, 2);
  labels->clear();
  for (int i = 0; i < 2 * per; ++i) {
    const bool second = i >= per;
    labels->push_back(second ? 1 : 0);
    const double angle =
        (second ? angle_b : angle_a) + rng->Normal(0.0, spread);
    points(i, 0) = static_cast<float>(std::cos(angle));
    points(i, 1) = static_cast<float>(std::sin(angle));
  }
  return points;
}

TEST(SphericalKMeansTest, CentersAreUnitLength) {
  Rng rng(1);
  std::vector<int> labels;
  la::Matrix points = CircleBlobs(40, 0.0, 2.0, 0.15, &rng, &labels);
  cluster::KMeansOptions options;
  options.num_clusters = 2;
  options.spherical = true;
  auto result = cluster::KMeans(points, options, &rng);
  ASSERT_TRUE(result.ok());
  for (int c = 0; c < 2; ++c) {
    double norm = 0.0;
    for (int j = 0; j < 2; ++j) {
      norm += static_cast<double>(result->centers(c, j)) * result->centers(c, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
  // Blobs separated.
  std::set<int> first(result->assignments.begin(),
                      result->assignments.begin() + 40);
  std::set<int> second(result->assignments.begin() + 40,
                       result->assignments.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
}

TEST(ConstrainedKMeansTest, PinsLabeledPoints) {
  Rng rng(2);
  // Three blobs on a line; class 0 labeled.
  la::Matrix points(30, 1);
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    const int blob = i / 10;
    points(i, 0) = 10.0f * blob + static_cast<float>(rng.Normal(0, 0.5));
    labels.push_back(blob);
  }
  std::vector<int> labeled_nodes = {0, 1, 2};
  std::vector<int> labeled_classes = {0, 0, 0};
  cluster::ConstrainedKMeansOptions options;
  options.num_clusters = 3;
  auto result = cluster::ConstrainedKMeans(points, labeled_nodes,
                                           labeled_classes, 1, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Labeled points stay in cluster 0; the rest of blob 0 joins them.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(result->assignments[static_cast<size_t>(i)], 0);
  }
  // The other blobs occupy the two free clusters.
  std::set<int> others;
  for (int i = 10; i < 30; ++i) {
    others.insert(result->assignments[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(others.size(), 2u);
  EXPECT_EQ(others.count(0), 0u);
}

TEST(ConstrainedKMeansTest, PinnedEvenWhenGeometryDisagrees) {
  // A labeled point placed inside the other blob must stay pinned.
  la::Matrix points({{0.0f}, {0.1f}, {10.0f}, {10.1f}, {10.2f}});
  std::vector<int> labeled_nodes = {0, 4};  // node 4 sits in blob 2
  std::vector<int> labeled_classes = {0, 0};
  cluster::ConstrainedKMeansOptions options;
  options.num_clusters = 2;
  Rng rng(3);
  auto result = cluster::ConstrainedKMeans(points, labeled_nodes,
                                           labeled_classes, 1, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments[4], 0) << "labeled node must stay pinned";
}

TEST(ConstrainedKMeansTest, RejectsBadArguments) {
  la::Matrix points(4, 2);
  Rng rng(4);
  cluster::ConstrainedKMeansOptions options;
  options.num_clusters = 1;
  EXPECT_FALSE(
      cluster::ConstrainedKMeans(points, {0}, {0}, 2, options, &rng).ok());
  options.num_clusters = 2;
  EXPECT_FALSE(
      cluster::ConstrainedKMeans(points, {0}, {0, 1}, 1, options, &rng).ok());
  EXPECT_FALSE(
      cluster::ConstrainedKMeans(points, {9}, {0}, 1, options, &rng).ok());
  // Class 0 unlabeled -> error.
  EXPECT_FALSE(
      cluster::ConstrainedKMeans(points, {0}, {1}, 2, options, &rng).ok());
}

TEST(GmmTest, RecoversSeparatedComponents) {
  Rng rng(5);
  la::Matrix points(200, 2);
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const bool second = i >= 100;
    labels.push_back(second);
    points(i, 0) = static_cast<float>((second ? 8.0 : 0.0) + rng.Normal(0, 1.0));
    points(i, 1) = static_cast<float>(rng.Normal(0, second ? 2.0 : 0.5));
  }
  cluster::GmmOptions options;
  options.num_components = 2;
  auto result = cluster::FitGmm(points, options, &rng);
  ASSERT_TRUE(result.ok());
  // Components match blobs.
  const int c0 = result->assignments[0];
  for (int i = 0; i < 100; ++i) EXPECT_EQ(result->assignments[static_cast<size_t>(i)], c0);
  for (int i = 100; i < 200; ++i) EXPECT_NE(result->assignments[static_cast<size_t>(i)], c0);
  // Learned variances reflect the anisotropy of component 2.
  const int c1 = 1 - c0;
  EXPECT_GT(result->variances(c1, 1), result->variances(c0, 1));
  // Weights near 0.5 each.
  EXPECT_NEAR(result->weights[0], 0.5, 0.1);
}

TEST(GmmTest, LikelihoodImprovesOverInit) {
  Rng rng(6);
  la::Matrix points = la::Matrix::Normal(150, 3, 0.0f, 1.0f, &rng);
  cluster::GmmOptions one_iter;
  one_iter.num_components = 3;
  one_iter.max_iterations = 1;
  cluster::GmmOptions many;
  many.num_components = 3;
  many.max_iterations = 60;
  Rng ra(7), rb(7);
  auto r1 = cluster::FitGmm(points, one_iter, &ra);
  auto r2 = cluster::FitGmm(points, many, &rb);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GE(r2->mean_log_likelihood, r1->mean_log_likelihood - 1e-9);
}

TEST(GmmTest, RejectsBadOptions) {
  la::Matrix points(5, 2);
  Rng rng(8);
  cluster::GmmOptions options;
  options.num_components = 6;
  EXPECT_FALSE(cluster::FitGmm(points, options, &rng).ok());
  options.num_components = 2;
  options.min_variance = 0.0;
  EXPECT_FALSE(cluster::FitGmm(points, options, &rng).ok());
}

// ---------------------------------------------------------------------------
// Clusterer dispatch
// ---------------------------------------------------------------------------

TEST(ClustererTest, ParseAndFormatRoundTrip) {
  for (auto kind :
       {core::ClustererKind::kKMeans, core::ClustererKind::kSphericalKMeans,
        core::ClustererKind::kConstrainedKMeans, core::ClustererKind::kGmm}) {
    auto parsed = core::ParseClustererKind(core::ClustererKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(core::ParseClustererKind("dbscan").ok());
}

TEST(ClustererTest, EveryKindClustersBlobs) {
  Rng data_rng(9);
  la::Matrix points(60, 2);
  std::vector<int> truth;
  for (int i = 0; i < 60; ++i) {
    const int blob = i / 20;
    truth.push_back(blob);
    // Tight blobs at well-separated angles on the unit circle, so both the
    // Euclidean and the spherical variants see clean structure.
    const double angle = 2.1 * blob + data_rng.Normal(0, 0.05);
    points(i, 0) = static_cast<float>(std::cos(angle));
    points(i, 1) = static_cast<float>(std::sin(angle));
  }
  std::vector<int> labeled_nodes = {0, 1};
  std::vector<int> labeled_classes = {0, 0};
  for (auto kind :
       {core::ClustererKind::kKMeans, core::ClustererKind::kSphericalKMeans,
        core::ClustererKind::kConstrainedKMeans, core::ClustererKind::kGmm}) {
    Rng rng(10);
    auto result = core::RunClusterer(kind, points, 3, labeled_nodes,
                                     labeled_classes, 1, 50, 2, &rng);
    ASSERT_TRUE(result.ok()) << core::ClustererKindName(kind);
    EXPECT_EQ(result->assignments.size(), 60u);
    EXPECT_EQ(result->centers.rows(), 3);
    // Each blob lands in one cluster.
    for (int blob = 0; blob < 3; ++blob) {
      std::set<int> ids(result->assignments.begin() + blob * 20,
                        result->assignments.begin() + (blob + 1) * 20);
      EXPECT_EQ(ids.size(), 1u)
          << core::ClustererKindName(kind) << " split blob " << blob;
    }
  }
}

}  // namespace
}  // namespace openima
