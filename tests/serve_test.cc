// Frozen-model inference service (src/core/serve.h): loading a training
// checkpoint, the classify contract (batched == one-by-one, deterministic
// across sessions and tags with exhaustive fanout, LUT consistency with the
// checkpointed alignment), and the load-time rejection paths (no centers
// yet, wrong feature dimension, missing file).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/openima.h"
#include "src/core/serve.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/obs/obs.h"

namespace openima {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

struct Fixture {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

Fixture SmallProblem() {
  graph::SbmConfig c;
  c.num_nodes = 120;
  c.num_classes = 4;
  c.feature_dim = 8;
  c.avg_degree = 8.0;
  c.homophily = 0.8;
  auto ds = graph::GenerateSbm(c, /*seed=*/5, "serve_test");
  EXPECT_TRUE(ds.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 8;
  so.val_per_class = 4;
  auto split = graph::MakeOpenWorldSplit(*ds, so, /*seed=*/3);
  EXPECT_TRUE(split.ok());
  return Fixture{std::move(*ds), std::move(*split)};
}

// Trains a small model for `epochs` and saves a checkpoint; returns its path.
std::string TrainAndSave(const Fixture& fx, const char* name, int epochs) {
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = epochs;
  config.pseudo_warmup_epochs = 2;
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  EXPECT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath(name);
  EXPECT_TRUE(model.SaveCheckpoint(path).ok());
  return path;
}

TEST(ServeTest, LoadExposesCheckpointGeometry) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_geom.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->num_seen(), fx.split.num_seen);
  EXPECT_EQ((*service)->num_clusters(),
            fx.split.num_seen + fx.split.num_novel);
  EXPECT_EQ((*service)->epochs_done(), 5);
  EXPECT_EQ((*service)->cluster_to_final_class().size(),
            static_cast<size_t>((*service)->num_clusters()));
  // The LUT is a permutation of the final open-world class ids: every seen
  // and novel class appears exactly once.
  std::vector<int> lut = (*service)->cluster_to_final_class();
  std::sort(lut.begin(), lut.end());
  std::vector<int> want(lut.size());
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(lut, want);
}

TEST(ServeTest, BatchedEqualsOneByOne) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_batch.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::vector<int> nodes = {3, 17, 44, 90, 119};
  auto session = (*service)->NewSession();
  std::vector<core::ClassifyResult> batched;
  ASSERT_TRUE(session->Classify(nodes, /*tag=*/0, &batched).ok());
  ASSERT_EQ(batched.size(), nodes.size());

  auto single_session = (*service)->NewSession();
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<core::ClassifyResult> one;
    ASSERT_TRUE(single_session->Classify({nodes[i]}, /*tag=*/7, &one).ok());
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].class_id, batched[i].class_id) << "node " << nodes[i];
    EXPECT_EQ(one[0].cluster, batched[i].cluster);
    EXPECT_EQ(one[0].is_novel, batched[i].is_novel);
    EXPECT_EQ(one[0].distance2, batched[i].distance2);
  }
}

TEST(ServeTest, DeterministicAcrossSessionsAndConsistentWithLut) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_det.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<int> nodes(fx.dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);

  auto s1 = (*service)->NewSession();
  auto s2 = (*service)->NewSession();
  std::vector<core::ClassifyResult> r1, r2;
  ASSERT_TRUE(s1->Classify(nodes, /*tag=*/1, &r1).ok());
  ASSERT_TRUE(s2->Classify(nodes, /*tag=*/2, &r2).ok());
  ASSERT_EQ(r1.size(), r2.size());

  const auto& lut = (*service)->cluster_to_final_class();
  for (size_t i = 0; i < r1.size(); ++i) {
    // Exhaustive fanout: the tag keys sampling draws that never happen, so
    // two sessions with different tags must agree bit-for-bit.
    EXPECT_EQ(r1[i].class_id, r2[i].class_id) << "node " << i;
    EXPECT_EQ(r1[i].distance2, r2[i].distance2) << "node " << i;
    // Internal consistency of each result row.
    ASSERT_GE(r1[i].cluster, 0);
    ASSERT_LT(r1[i].cluster, (*service)->num_clusters());
    EXPECT_EQ(r1[i].class_id, lut[r1[i].cluster]);
    EXPECT_EQ(r1[i].is_novel, r1[i].class_id >= (*service)->num_seen());
    EXPECT_GE(r1[i].distance2, 0.0f);
    EXPECT_GE(r1[i].margin, 0.0f);
    EXPECT_TRUE(std::isfinite(r1[i].distance2));
  }
}

TEST(ServeTest, BoundedFanoutIsDeterministicPerTag) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_fanout.ckpt", 5);
  core::ServeOptions options;
  options.sample_fanout = 3;
  auto service = core::InferenceService::Load(path, &fx.dataset, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::vector<int> nodes = {0, 25, 50, 75, 100};
  auto s1 = (*service)->NewSession();
  auto s2 = (*service)->NewSession();
  std::vector<core::ClassifyResult> r1, r2;
  ASSERT_TRUE(s1->Classify(nodes, /*tag=*/42, &r1).ok());
  ASSERT_TRUE(s2->Classify(nodes, /*tag=*/42, &r2).ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(r1[i].class_id, r2[i].class_id);
    EXPECT_EQ(r1[i].distance2, r2[i].distance2);
  }
}

TEST(ServeTest, ClassifyRejectsBadIds) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_badids.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto session = (*service)->NewSession();
  std::vector<core::ClassifyResult> out;
  EXPECT_FALSE(session->Classify({-1}, 0, &out).ok());
  EXPECT_FALSE(session->Classify({fx.dataset.num_nodes()}, 0, &out).ok());
  EXPECT_FALSE(session->Classify({5, 5}, 0, &out).ok());  // duplicate
  EXPECT_FALSE(session->Classify({}, 0, &out).ok());      // empty batch
  // The session stays usable after a rejected request.
  EXPECT_TRUE(session->Classify({5, 6}, 0, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(ServeTest, LoadRejectsCheckpointWithoutCenters) {
  Fixture fx = SmallProblem();
  // Stop inside the warmup window: no pseudo-label refresh has run, so the
  // checkpoint has no K-Means centers to classify against.
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = 6;
  config.pseudo_warmup_epochs = 4;
  config.stop_after_epochs = 2;
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("serve_nocenters.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("centers"), std::string::npos);
}

TEST(ServeTest, LoadRejectsFeatureDimMismatchAndMissingFile) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_dim.ckpt", 5);

  graph::SbmConfig c;
  c.num_nodes = 40;
  c.num_classes = 2;
  c.feature_dim = 6;  // checkpoint expects 8
  auto other = graph::GenerateSbm(c, /*seed=*/9, "serve_test_other");
  ASSERT_TRUE(other.ok());
  auto service =
      core::InferenceService::Load(path, &*other, core::ServeOptions{});
  ASSERT_FALSE(service.ok());

  auto missing = core::InferenceService::Load(TempPath("serve_missing.ckpt"),
                                              &fx.dataset,
                                              core::ServeOptions{});
  EXPECT_FALSE(missing.ok());
}

// --------------------------------------- live observability on serve --

// Splits all node ids by the frozen model's own novel-vs-seen call, so the
// drift tests below can compose request streams with a known predicted mix.
void PartitionByPrediction(core::InferenceService* service,
                           const graph::Dataset& dataset,
                           std::vector<int>* seen, std::vector<int>* novel) {
  std::vector<int> nodes(dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  auto session = service->NewSession();
  std::vector<core::ClassifyResult> results;
  ASSERT_TRUE(session->Classify(nodes, /*tag=*/0, &results).ok());
  for (size_t i = 0; i < results.size(); ++i) {
    (results[i].is_novel ? novel : seen)->push_back(nodes[i]);
  }
}

// Feeds `count` observations drawn round-robin from `pool` (batches never
// repeat a node, consecutive batches may).
void FeedRequests(core::InferenceSession* session, const std::vector<int>& pool,
                  int count) {
  int fed = 0;
  size_t next = 0;
  while (fed < count) {
    std::vector<int> batch;
    const int take = std::min<int>(count - fed, 8);
    for (int i = 0; i < take; ++i) {
      batch.push_back(pool[next]);
      next = (next + 1) % pool.size();
      if (next == 0 && static_cast<int>(batch.size()) < take) break;
    }
    std::vector<core::ClassifyResult> out;
    ASSERT_TRUE(session->Classify(batch, /*tag=*/0, &out).ok());
    fed += static_cast<int>(batch.size());
  }
}

// Acceptance demo for the drift monitor: an in-distribution request mix
// keeps the warn-policy monitor quiet, while a novel-heavy mix raises an
// alert within one evaluation window.
TEST(ServeTest, DriftMonitorAlertsOnNovelHeavyMixOnly) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "drift needs OPENIMA_OBS=ON";
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_drift.ckpt", 5);

  auto plain =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  std::vector<int> seen_nodes, novel_nodes;
  PartitionByPrediction(plain->get(), fx.dataset, &seen_nodes, &novel_nodes);
  ASSERT_GE(seen_nodes.size(), 8u);
  ASSERT_GE(novel_nodes.size(), 4u);

  constexpr int kWindow = 30;
  core::ServeOptions options;
  options.drift.policy = obs::WatchdogPolicy::kWarn;
  options.drift.window = kWindow;
  options.drift.baseline_windows = 1;
  auto service = core::InferenceService::Load(path, &fx.dataset, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  obs::DriftMonitor* drift = (*service)->drift_monitor();
  ASSERT_NE(drift, nullptr);

  auto session = (*service)->NewSession();
  // Calibration window: the model's own seen-dominant prediction mix.
  FeedRequests(session.get(), seen_nodes, kWindow);
  obs::DriftStats stats = drift->stats();
  EXPECT_EQ(stats.windows_completed, 1);
  EXPECT_TRUE(stats.baseline_set);
  EXPECT_EQ(stats.alerts, 0);

  // Two more windows of the same mix: in-distribution traffic stays quiet.
  FeedRequests(session.get(), seen_nodes, 2 * kWindow);
  stats = drift->stats();
  EXPECT_EQ(stats.windows_completed, 3);
  EXPECT_EQ(stats.alerts, 0) << "in-distribution mix must not alert";

  // Novel-heavy mix: every request predicted novel, against a baseline
  // novel fraction of 0. One window is enough to alert.
  FeedRequests(session.get(), novel_nodes, kWindow);
  stats = drift->stats();
  EXPECT_EQ(stats.windows_completed, 4);
  EXPECT_GE(stats.alerts, 1) << "novel-heavy mix must alert within a window";
  EXPECT_DOUBLE_EQ(stats.last_novel_fraction, 1.0);
  // kWarn alerts never surface as request errors.
  EXPECT_TRUE(drift->ConsumeStatus().ok());
}

TEST(ServeTest, DriftAbortPolicyFailsRequestsAfterAlert) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "drift needs OPENIMA_OBS=ON";
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_drift_abort.ckpt", 5);

  auto plain =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  std::vector<int> seen_nodes, novel_nodes;
  PartitionByPrediction(plain->get(), fx.dataset, &seen_nodes, &novel_nodes);
  ASSERT_GE(seen_nodes.size(), 8u);
  ASSERT_GE(novel_nodes.size(), 4u);

  core::ServeOptions options;
  options.drift.policy = obs::WatchdogPolicy::kAbort;
  options.drift.window = 16;
  options.drift.baseline_windows = 1;
  auto service = core::InferenceService::Load(path, &fx.dataset, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto session = (*service)->NewSession();
  FeedRequests(session.get(), seen_nodes, 16);  // calibration, all OK

  // Classify the novel-heavy stream until the window closes: the request
  // that completes the alerting window comes back as an error.
  Status last = Status::OK();
  for (int i = 0; i < 16 && last.ok(); i += 4) {
    std::vector<int> batch(novel_nodes.begin(), novel_nodes.begin() + 4);
    std::vector<core::ClassifyResult> out;
    last = session->Classify(batch, /*tag=*/0, &out);
  }
  EXPECT_FALSE(last.ok()) << "abort policy must surface the drift trip";
  // The trip is sticky: subsequent requests keep failing.
  std::vector<core::ClassifyResult> out;
  EXPECT_FALSE(
      session->Classify({seen_nodes[0], seen_nodes[1]}, 0, &out).ok());
}

TEST(ServeTest, WatchdogRejectsNonFiniteForward) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "watchdog needs OPENIMA_OBS=ON";
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_nan.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // Poison one node's features after load: the forward pass now produces
  // non-finite embeddings for any batch touching it.
  fx.dataset.features(7, 0) = std::numeric_limits<float>::quiet_NaN();

  auto session = (*service)->NewSession();
  std::vector<core::ClassifyResult> out;
  // Watchdog off (default): the request "succeeds" with garbage — exactly
  // what the forward-pass scan is there to prevent.
  ASSERT_TRUE(session->Classify({7}, 0, &out).ok());

  obs::WatchdogOptions wd;
  wd.policy = obs::WatchdogPolicy::kRecord;
  obs::Watchdog::Configure(wd);
  Status status = session->Classify({7}, 0, &out);
  obs::Watchdog::ResetForTest();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("non-finite"), std::string::npos);

  // Clean batches keep working; the per-request rejection is not sticky.
  EXPECT_TRUE(session->Classify({3, 5}, 0, &out).ok());
}

TEST(ServeTest, TraceSamplingEmitsOneInNRequests) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "tracing needs OPENIMA_OBS=ON";
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_trace.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  obs::ResetTraceForTest();
  obs::SetTraceSamplePeriod(4);
  const std::string trace_path = TempPath("serve_trace_out.json");
  ASSERT_TRUE(obs::StartTracing(trace_path).ok());
  auto session = (*service)->NewSession();
  for (int i = 0; i < 8; ++i) {
    std::vector<core::ClassifyResult> out;
    ASSERT_TRUE(session->Classify({i}, /*tag=*/1, &out).ok());
  }
  ASSERT_TRUE(obs::StopTracing().ok());
  obs::SetTraceSamplePeriod(1);

  std::ifstream in(trace_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = obs::json::Value::Parse(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::json::Value& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // 1-in-4 sampling over 8 requests: exactly requests 0 and 4 are traced.
  int request_events = 0;
  int metadata_events = 0;
  int phase_events = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& event = events.at(i);
    const std::string& name = event.at("name").AsString();
    if (name == "serve_request") {
      ++request_events;
      const obs::json::Value& args = event.at("args");
      if (args.Has("batch") && args.Has("tag") && args.Has("novel") &&
          args.Has("clusters")) {
        ++metadata_events;
        EXPECT_EQ(args.at("batch").AsString(), "1");
      }
    } else if (name.rfind("serve_", 0) == 0) {
      ++phase_events;  // nested phases of the sampled requests only
    }
  }
  EXPECT_EQ(request_events, 2);
  EXPECT_EQ(metadata_events, 2);
  EXPECT_GT(phase_events, 0);
  // Unsampled requests contribute no events at all: every event traces back
  // to one of the two sampled requests.
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& event = events.at(i);
    const obs::json::Value* event_path = event.at("args").Find("path");
    const std::string& name = event.at("name").AsString();
    if (name.rfind("serve", 0) != 0) continue;
    if (event_path != nullptr) {
      EXPECT_EQ(event_path->AsString().rfind("serve_request", 0), 0u)
          << event_path->AsString();
    }
  }
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace openima
