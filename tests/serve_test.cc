// Frozen-model inference service (src/core/serve.h): loading a training
// checkpoint, the classify contract (batched == one-by-one, deterministic
// across sessions and tags with exhaustive fanout, LUT consistency with the
// checkpointed alignment), and the load-time rejection paths (no centers
// yet, wrong feature dimension, missing file).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/openima.h"
#include "src/core/serve.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"

namespace openima {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

struct Fixture {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

Fixture SmallProblem() {
  graph::SbmConfig c;
  c.num_nodes = 120;
  c.num_classes = 4;
  c.feature_dim = 8;
  c.avg_degree = 8.0;
  c.homophily = 0.8;
  auto ds = graph::GenerateSbm(c, /*seed=*/5, "serve_test");
  EXPECT_TRUE(ds.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 8;
  so.val_per_class = 4;
  auto split = graph::MakeOpenWorldSplit(*ds, so, /*seed=*/3);
  EXPECT_TRUE(split.ok());
  return Fixture{std::move(*ds), std::move(*split)};
}

// Trains a small model for `epochs` and saves a checkpoint; returns its path.
std::string TrainAndSave(const Fixture& fx, const char* name, int epochs) {
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = epochs;
  config.pseudo_warmup_epochs = 2;
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  EXPECT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath(name);
  EXPECT_TRUE(model.SaveCheckpoint(path).ok());
  return path;
}

TEST(ServeTest, LoadExposesCheckpointGeometry) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_geom.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ((*service)->num_seen(), fx.split.num_seen);
  EXPECT_EQ((*service)->num_clusters(),
            fx.split.num_seen + fx.split.num_novel);
  EXPECT_EQ((*service)->epochs_done(), 5);
  EXPECT_EQ((*service)->cluster_to_final_class().size(),
            static_cast<size_t>((*service)->num_clusters()));
  // The LUT is a permutation of the final open-world class ids: every seen
  // and novel class appears exactly once.
  std::vector<int> lut = (*service)->cluster_to_final_class();
  std::sort(lut.begin(), lut.end());
  std::vector<int> want(lut.size());
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(lut, want);
}

TEST(ServeTest, BatchedEqualsOneByOne) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_batch.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::vector<int> nodes = {3, 17, 44, 90, 119};
  auto session = (*service)->NewSession();
  std::vector<core::ClassifyResult> batched;
  ASSERT_TRUE(session->Classify(nodes, /*tag=*/0, &batched).ok());
  ASSERT_EQ(batched.size(), nodes.size());

  auto single_session = (*service)->NewSession();
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<core::ClassifyResult> one;
    ASSERT_TRUE(single_session->Classify({nodes[i]}, /*tag=*/7, &one).ok());
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].class_id, batched[i].class_id) << "node " << nodes[i];
    EXPECT_EQ(one[0].cluster, batched[i].cluster);
    EXPECT_EQ(one[0].is_novel, batched[i].is_novel);
    EXPECT_EQ(one[0].distance2, batched[i].distance2);
  }
}

TEST(ServeTest, DeterministicAcrossSessionsAndConsistentWithLut) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_det.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<int> nodes(fx.dataset.num_nodes());
  std::iota(nodes.begin(), nodes.end(), 0);

  auto s1 = (*service)->NewSession();
  auto s2 = (*service)->NewSession();
  std::vector<core::ClassifyResult> r1, r2;
  ASSERT_TRUE(s1->Classify(nodes, /*tag=*/1, &r1).ok());
  ASSERT_TRUE(s2->Classify(nodes, /*tag=*/2, &r2).ok());
  ASSERT_EQ(r1.size(), r2.size());

  const auto& lut = (*service)->cluster_to_final_class();
  for (size_t i = 0; i < r1.size(); ++i) {
    // Exhaustive fanout: the tag keys sampling draws that never happen, so
    // two sessions with different tags must agree bit-for-bit.
    EXPECT_EQ(r1[i].class_id, r2[i].class_id) << "node " << i;
    EXPECT_EQ(r1[i].distance2, r2[i].distance2) << "node " << i;
    // Internal consistency of each result row.
    ASSERT_GE(r1[i].cluster, 0);
    ASSERT_LT(r1[i].cluster, (*service)->num_clusters());
    EXPECT_EQ(r1[i].class_id, lut[r1[i].cluster]);
    EXPECT_EQ(r1[i].is_novel, r1[i].class_id >= (*service)->num_seen());
    EXPECT_GE(r1[i].distance2, 0.0f);
    EXPECT_GE(r1[i].margin, 0.0f);
    EXPECT_TRUE(std::isfinite(r1[i].distance2));
  }
}

TEST(ServeTest, BoundedFanoutIsDeterministicPerTag) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_fanout.ckpt", 5);
  core::ServeOptions options;
  options.sample_fanout = 3;
  auto service = core::InferenceService::Load(path, &fx.dataset, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::vector<int> nodes = {0, 25, 50, 75, 100};
  auto s1 = (*service)->NewSession();
  auto s2 = (*service)->NewSession();
  std::vector<core::ClassifyResult> r1, r2;
  ASSERT_TRUE(s1->Classify(nodes, /*tag=*/42, &r1).ok());
  ASSERT_TRUE(s2->Classify(nodes, /*tag=*/42, &r2).ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(r1[i].class_id, r2[i].class_id);
    EXPECT_EQ(r1[i].distance2, r2[i].distance2);
  }
}

TEST(ServeTest, ClassifyRejectsBadIds) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_badids.ckpt", 5);
  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto session = (*service)->NewSession();
  std::vector<core::ClassifyResult> out;
  EXPECT_FALSE(session->Classify({-1}, 0, &out).ok());
  EXPECT_FALSE(session->Classify({fx.dataset.num_nodes()}, 0, &out).ok());
  EXPECT_FALSE(session->Classify({5, 5}, 0, &out).ok());  // duplicate
  EXPECT_FALSE(session->Classify({}, 0, &out).ok());      // empty batch
  // The session stays usable after a rejected request.
  EXPECT_TRUE(session->Classify({5, 6}, 0, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(ServeTest, LoadRejectsCheckpointWithoutCenters) {
  Fixture fx = SmallProblem();
  // Stop inside the warmup window: no pseudo-label refresh has run, so the
  // checkpoint has no K-Means centers to classify against.
  core::OpenImaConfig config;
  config.encoder.in_dim = fx.dataset.feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = fx.split.num_seen;
  config.num_novel = fx.split.num_novel;
  config.epochs = 6;
  config.pseudo_warmup_epochs = 4;
  config.stop_after_epochs = 2;
  core::OpenImaModel model(config, fx.dataset.feature_dim(), /*seed=*/11);
  ASSERT_TRUE(model.Train(fx.dataset, fx.split).ok());
  const std::string path = TempPath("serve_nocenters.ckpt");
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  auto service =
      core::InferenceService::Load(path, &fx.dataset, core::ServeOptions{});
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("centers"), std::string::npos);
}

TEST(ServeTest, LoadRejectsFeatureDimMismatchAndMissingFile) {
  Fixture fx = SmallProblem();
  const std::string path = TrainAndSave(fx, "serve_dim.ckpt", 5);

  graph::SbmConfig c;
  c.num_nodes = 40;
  c.num_classes = 2;
  c.feature_dim = 6;  // checkpoint expects 8
  auto other = graph::GenerateSbm(c, /*seed=*/9, "serve_test_other");
  ASSERT_TRUE(other.ok());
  auto service =
      core::InferenceService::Load(path, &*other, core::ServeOptions{});
  ASSERT_FALSE(service.ok());

  auto missing = core::InferenceService::Load(TempPath("serve_missing.ckpt"),
                                              &fx.dataset,
                                              core::ServeOptions{});
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace openima
