#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/tape.h"
#include "src/autograd/variable.h"
#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/matrix.h"
#include "src/la/pool.h"
#include "src/nn/arena.h"
#include "src/util/rng.h"

/// The memory layer's contract: while a pool/tape is bound, every matrix,
/// scratch buffer and graph node recycles through the arena — and after the
/// first epoch has populated the buckets, training steps stop touching the
/// heap entirely. These tests pin the bucketing rules, the RAII binding
/// semantics, and the end-to-end allocation-free steady state.
namespace openima {
namespace {

namespace ops = openima::autograd::ops;

// ---------------------------------------------------------------------------
// Bucketing and reuse
// ---------------------------------------------------------------------------

TEST(PoolTest, CapacityRoundsUpToPowerOfTwoBuckets) {
  EXPECT_EQ(la::Pool::Capacity(1), 64);
  EXPECT_EQ(la::Pool::Capacity(64), 64);
  EXPECT_EQ(la::Pool::Capacity(65), 128);
  EXPECT_EQ(la::Pool::Capacity(1000), 1024);
  EXPECT_EQ(la::Pool::Capacity(1024), 1024);
  EXPECT_EQ(la::Pool::Capacity(1025), 2048);
}

TEST(PoolTest, ReusesReleasedBuffersFromTheSameBucket) {
  la::Pool pool;
  float* a = pool.Acquire(100);  // bucket 128
  pool.Release(a, 100);
  float* b = pool.Acquire(80);  // same bucket -> same block back (LIFO)
  EXPECT_EQ(a, b);
  const la::PoolStats& s = pool.stats();
  EXPECT_EQ(s.acquires, 2);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.outstanding, 1);
  pool.Release(b, 80);
  EXPECT_EQ(pool.stats().outstanding, 0);
  pool.Trim();
  EXPECT_EQ(pool.stats().bytes_cached, 0);
}

TEST(PoolTest, StressMixedShapesShuffledReleaseOrder) {
  la::Pool pool;
  // Mixed sizes spanning several buckets, including bucket-exact and
  // sub-minimum counts.
  const std::vector<int64_t> sizes = {1,   7,    64,  65,   100, 128,
                                      500, 1000, 777, 2048, 33,  4096};
  std::mt19937 shuffler(1234);
  int64_t misses_after_first_round = -1;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::pair<float*, int64_t>> live;
    live.reserve(sizes.size());
    for (int64_t n : sizes) {
      float* p = pool.Acquire(n);
      // Touch the full requested extent: ASan (OPENIMA_SANITIZE=address)
      // turns any bucket-accounting bug into a hard failure here.
      std::fill(p, p + n, static_cast<float>(n));
      live.emplace_back(p, n);
    }
    for (auto& [p, n] : live) {
      EXPECT_EQ(p[0], static_cast<float>(n));
      EXPECT_EQ(p[n - 1], static_cast<float>(n));
    }
    // Release in a different order every round: free-list reuse must not
    // depend on acquisition order.
    std::shuffle(live.begin(), live.end(), shuffler);
    for (auto& [p, n] : live) pool.Release(p, n);
    if (round == 0) misses_after_first_round = pool.stats().misses;
  }
  const la::PoolStats& s = pool.stats();
  // Every round after the first is served entirely from the free lists.
  EXPECT_EQ(s.misses, misses_after_first_round);
  EXPECT_EQ(s.acquires, static_cast<int64_t>(sizes.size()) * 20);
  EXPECT_EQ(s.releases, s.acquires);
  EXPECT_EQ(s.outstanding, 0);
  EXPECT_EQ(s.hits + s.misses, s.acquires);
}

// ---------------------------------------------------------------------------
// Bindings: thread-local routing of Matrix / PoolBuffer storage
// ---------------------------------------------------------------------------

TEST(PoolBindingTest, MatrixStorageRoutesThroughBoundPool) {
  la::Pool pool;
  const int64_t unpooled_before = la::UnpooledAllocCount();
  {
    la::PoolBinding bind(&pool);
    EXPECT_EQ(la::BoundPool(), &pool);
    Rng rng(7);
    la::Matrix m = la::Matrix::Normal(30, 20, 0.0f, 1.0f, &rng);
    la::Matrix copy = m;         // pooled copy
    la::Matrix moved = std::move(copy);  // move: no new storage
    EXPECT_TRUE(m == moved);
    EXPECT_GT(pool.stats().acquires, 0);
  }
  // Everything created under the binding came back to the pool...
  EXPECT_EQ(pool.stats().outstanding, 0);
  // ...and none of it touched the global heap path.
  EXPECT_EQ(la::UnpooledAllocCount(), unpooled_before);
}

TEST(PoolBindingTest, UnboundMatrixAllocationsCountAsUnpooled) {
  ASSERT_EQ(la::BoundPool(), nullptr);
  const int64_t before = la::UnpooledAllocCount();
  la::Matrix m(16, 16);
  EXPECT_GT(la::UnpooledAllocCount(), before);
}

TEST(PoolBindingTest, NullBindingForcesHeapInsideOuterBinding) {
  la::Pool pool;
  la::PoolBinding outer(&pool);
  const int64_t acquires_before = pool.stats().acquires;
  const int64_t unpooled_before = la::UnpooledAllocCount();
  {
    la::PoolBinding escape(nullptr);  // nested opt-out
    EXPECT_EQ(la::BoundPool(), nullptr);
    la::Matrix m(8, 8);
  }
  EXPECT_EQ(la::BoundPool(), &pool);  // outer binding restored
  EXPECT_EQ(pool.stats().acquires, acquires_before);
  EXPECT_GT(la::UnpooledAllocCount(), unpooled_before);
}

TEST(PoolBindingTest, ResolvePoolPrefersContextThenBinding) {
  la::Pool ctx_pool;
  la::Pool bound_pool;
  exec::Context ctx(1);
  EXPECT_EQ(la::ResolvePool(nullptr), nullptr);
  la::PoolBinding bind(&bound_pool);
  EXPECT_EQ(la::ResolvePool(nullptr), &bound_pool);
  EXPECT_EQ(la::ResolvePool(&ctx), &bound_pool);  // ctx without pool falls back
  ctx.set_memory_pool(&ctx_pool);
  EXPECT_EQ(la::ResolvePool(&ctx), &ctx_pool);
}

TEST(PoolBufferTest, DrawsFromBoundPoolAndReleasesOnDestruction) {
  la::Pool pool;
  la::PoolBinding bind(&pool);
  {
    la::PoolBuffer buf(200);
    ASSERT_EQ(buf.size(), 200);
    for (int64_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<float>(i);
    EXPECT_EQ(buf[199], 199.0f);
    EXPECT_EQ(pool.stats().outstanding, 1);
    la::PoolBuffer stolen = std::move(buf);  // move transfers ownership
    EXPECT_EQ(stolen.size(), 200);
    EXPECT_EQ(pool.stats().outstanding, 1);
  }
  EXPECT_EQ(pool.stats().outstanding, 0);
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, pool.stats().acquires);
}

// ---------------------------------------------------------------------------
// Tape: graph-node recycling across epochs
// ---------------------------------------------------------------------------

TEST(TapeTest, SecondStepIsServedFromRecycledBlocks) {
  autograd::Tape tape;
  auto one_step = [&] {
    autograd::TapeBinding bind(&tape);
    autograd::Variable x =
        autograd::Variable::Leaf(la::Matrix({{1.0f, 2.0f}, {3.0f, 4.0f}}),
                                 true);
    autograd::Variable y = ops::Scale(ops::Mul(x, x), 0.5f);
    autograd::Variable loss = ops::SumAll(y);
    loss.Backward();
    EXPECT_NEAR(loss.value()(0, 0), 15.0f, 1e-5);
  };

  one_step();
  tape.Reset();
  const autograd::TapeStats after_first = tape.stats();
  EXPECT_GT(after_first.nodes, 0);
  EXPECT_GT(after_first.misses, 0);
  EXPECT_EQ(after_first.outstanding, 0);

  one_step();  // identical graph: every node block recycles
  tape.Reset();
  const autograd::TapeStats after_second = tape.stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits, after_first.hits + after_first.nodes);
  EXPECT_EQ(after_second.bytes_allocated, after_first.bytes_allocated);
  EXPECT_EQ(after_second.outstanding, 0);
  EXPECT_EQ(after_second.resets, 2);
}

TEST(TrainingArenaTest, EndEpochRecyclesWholeSteps) {
  nn::TrainingArena arena;
  for (int epoch = 0; epoch < 3; ++epoch) {
    nn::TrainingArena::Binding bind(&arena);
    arena.EndEpoch();
    autograd::Variable x =
        autograd::Variable::Leaf(la::Matrix({{0.5f, -0.25f}}), true);
    autograd::Variable loss = ops::MeanAll(ops::Elu(x));
    loss.Backward();
  }
  EXPECT_EQ(arena.pool().stats().outstanding, 0);
  EXPECT_EQ(arena.tape().stats().outstanding, 0);
  // Epochs 1 and 2 re-used epoch 0's blocks.
  EXPECT_GT(arena.tape().stats().hits, 0);
}

// ---------------------------------------------------------------------------
// Allocation regression: steady-state training epochs are allocation-free
// ---------------------------------------------------------------------------

/// Trains a small OpenIMA model end-to-end and asserts the tentpole claim:
/// after the warmup epochs have populated the arena (including the first
/// pseudo-label refresh, which introduces the last new shapes), epochs
/// perform zero unpooled matrix allocations and zero pool misses.
TEST(AllocationRegressionTest, SteadyStateEpochsAreAllocationFree) {
  graph::SbmConfig sbm;
  sbm.num_nodes = 120;
  sbm.num_classes = 4;
  sbm.feature_dim = 10;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 21, "alloc-regression");
  ASSERT_TRUE(dataset.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 8;
  so.val_per_class = 4;
  auto split = graph::MakeOpenWorldSplit(*dataset, so, 22);
  ASSERT_TRUE(split.ok());

  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 6;
  config.batch_size = 128;
  config.use_memory_pool = true;
  core::OpenImaModel model(config, dataset->feature_dim(), 23);
  ASSERT_TRUE(model.Train(*dataset, *split).ok());

  const core::TrainStats& stats = model.train_stats();
  ASSERT_EQ(stats.epoch_unpooled_allocs.size(), 6u);
  ASSERT_EQ(stats.epoch_pool_misses.size(), 6u);
  // Epoch 0 populates the pool; pseudo-labeling starts at epoch
  // pseudo_warmup_epochs (= 2) and brings the final new shapes. Everything
  // after that must be served entirely from the arena.
  for (size_t e = 3; e < 6; ++e) {
    EXPECT_EQ(stats.epoch_unpooled_allocs[e], 0)
        << "epoch " << e << " made unpooled matrix allocations";
    EXPECT_EQ(stats.epoch_pool_misses[e], 0)
        << "epoch " << e << " missed the pool";
  }
  // The pool saw real traffic and every buffer it handed out while training
  // either came back or is retained by the live model (params, Adam state).
  EXPECT_GT(stats.pool_stats.hits, stats.pool_stats.misses);
  EXPECT_GT(stats.tape_stats.hits, 0);
  EXPECT_EQ(stats.tape_stats.outstanding, 0);

  // Pseudo-label refreshes run at epochs 2..5 (warmup = 2, refresh every
  // epoch). The first refresh introduces the clustering shapes (distance
  // matrices, Lloyd bound buffers, norm scratch); every later refresh must
  // be served entirely from the arena — the clustering stage is as
  // allocation-free as the training step.
  ASSERT_EQ(stats.refresh_unpooled_allocs.size(), 4u);
  ASSERT_EQ(stats.refresh_pool_misses.size(), 4u);
  for (size_t r = 1; r < stats.refresh_unpooled_allocs.size(); ++r) {
    EXPECT_EQ(stats.refresh_unpooled_allocs[r], 0)
        << "refresh " << r << " made unpooled matrix allocations";
    EXPECT_EQ(stats.refresh_pool_misses[r], 0)
        << "refresh " << r << " missed the pool";
  }
}

/// The same training run with the pool disabled allocates every epoch —
/// the counter the regression test relies on actually measures something.
TEST(AllocationRegressionTest, UnpooledPathAllocatesEveryEpoch) {
  graph::SbmConfig sbm;
  sbm.num_nodes = 80;
  sbm.num_classes = 3;
  sbm.feature_dim = 8;
  sbm.avg_degree = 6.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 31, "alloc-regression-off");
  ASSERT_TRUE(dataset.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 6;
  so.val_per_class = 3;
  auto split = graph::MakeOpenWorldSplit(*dataset, so, 32);
  ASSERT_TRUE(split.ok());

  core::OpenImaConfig config;
  config.encoder.in_dim = dataset->feature_dim();
  config.encoder.hidden_dim = 8;
  config.encoder.embedding_dim = 8;
  config.encoder.num_heads = 2;
  config.num_seen = split->num_seen;
  config.num_novel = split->num_novel;
  config.epochs = 4;
  config.batch_size = 64;
  config.use_memory_pool = false;
  core::OpenImaModel model(config, dataset->feature_dim(), 33);
  ASSERT_TRUE(model.Train(*dataset, *split).ok());

  const core::TrainStats& stats = model.train_stats();
  for (int64_t allocs : stats.epoch_unpooled_allocs) EXPECT_GT(allocs, 0);
  EXPECT_EQ(stats.pool_stats.acquires, 0);
}

}  // namespace
}  // namespace openima
