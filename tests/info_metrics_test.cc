#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/info_metrics.h"
#include "src/util/rng.h"

namespace openima::metrics {
namespace {

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  auto nmi = NormalizedMutualInformation(a, a);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, InvariantToRelabeling) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 9, 9, 1, 1};
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreLow) {
  // Balanced 2x2 independent layout.
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {0, 1, 0, 1};
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 0.0, 1e-9);
}

TEST(NmiTest, SymmetricInArguments) {
  Rng rng(1);
  std::vector<int> a(60), b(60);
  for (auto& v : a) v = static_cast<int>(rng.UniformInt(4));
  for (auto& v : b) v = static_cast<int>(rng.UniformInt(3));
  auto ab = NormalizedMutualInformation(a, b);
  auto ba = NormalizedMutualInformation(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST(NmiTest, DegenerateConventions) {
  std::vector<int> constant = {1, 1, 1};
  std::vector<int> varied = {0, 1, 2};
  EXPECT_NEAR(*NormalizedMutualInformation(constant, constant), 1.0, 1e-12);
  EXPECT_NEAR(*NormalizedMutualInformation(constant, varied), 0.0, 1e-12);
}

TEST(NmiTest, PartialOverlapInBetween) {
  std::vector<int> a = {0, 0, 0, 1, 1, 1};
  std::vector<int> b = {0, 0, 1, 1, 1, 1};  // one point moved
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(*nmi, 0.2);
  EXPECT_LT(*nmi, 1.0);
}

TEST(NmiTest, RejectsBadInput) {
  EXPECT_FALSE(NormalizedMutualInformation({0}, {0, 1}).ok());
  EXPECT_FALSE(NormalizedMutualInformation({}, {}).ok());
  EXPECT_FALSE(NormalizedMutualInformation({-1}, {0}).ok());
}

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int> a = {0, 1, 1, 2, 2, 2};
  auto ari = AdjustedRandIndex(a, a);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 1.0, 1e-12);
}

TEST(AriTest, RandomPartitionNearZero) {
  Rng rng(7);
  std::vector<int> a(4000), b(4000);
  for (auto& v : a) v = static_cast<int>(rng.UniformInt(5));
  for (auto& v : b) v = static_cast<int>(rng.UniformInt(5));
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.02);
}

TEST(AriTest, KnownSmallCase) {
  // sklearn reference: ARI([0,0,1,1],[0,0,1,2]) = 0.57142857...
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {0, 0, 1, 2};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 4.0 / 7.0, 1e-9);
}

TEST(AriTest, SymmetricInArguments) {
  std::vector<int> a = {0, 0, 1, 1, 2};
  std::vector<int> b = {1, 1, 1, 0, 0};
  auto ab = AdjustedRandIndex(a, b);
  auto ba = AdjustedRandIndex(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST(AriTest, DegenerateIdenticalConstants) {
  std::vector<int> constant = {3, 3, 3};
  auto ari = AdjustedRandIndex(constant, constant);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 1.0, 1e-12);
}

}  // namespace
}  // namespace openima::metrics
