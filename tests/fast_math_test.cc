#include <gtest/gtest.h>

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/la/fast_math.h"
#include "src/util/rng.h"

namespace openima::la {
namespace {

// Pins the accuracy contract fast_math.h documents: FastExp is within
// 3 ulp of the correctly-rounded exp over [-87, 88], clamps (rather than
// under/overflows) outside it, and never produces a denormal. Both kernel
// backends lean on this bound — the scalar backend calls FastExp directly
// and the avx2 backend duplicates the same Cephes constants — so a silent
// regression here would widen every softmax/elu tolerance downstream.

/// Ulp distance between two positive finite floats: the bit patterns of
/// same-sign IEEE floats are ordered, so integer difference == ulp count.
std::int32_t UlpDiff(float a, float b) {
  return std::abs(std::bit_cast<std::int32_t>(a) -
                  std::bit_cast<std::int32_t>(b));
}

/// Reference: double exp rounded once to float.
float RefExp(float x) {
  return static_cast<float>(std::exp(static_cast<double>(x)));
}

TEST(FastExpTest, Within3UlpOverDomain) {
  std::int32_t worst = 0;
  float worst_x = 0.0f;
  // Uniform grid over the documented domain [-87, 88]: half a million
  // points crosses every power-of-two decade and every polynomial
  // range-reduction bucket many thousands of times.
  const int kGrid = 500000;
  for (int i = 0; i <= kGrid; ++i) {
    const float x = -87.0f + 175.0f * static_cast<float>(i) / kGrid;
    const std::int32_t u = UlpDiff(FastExp(x), RefExp(x));
    if (u > worst) {
      worst = u;
      worst_x = x;
    }
  }
  // Random fill-in between grid points, same domain.
  Rng rng(20260808);
  for (int i = 0; i < 500000; ++i) {
    const float x = static_cast<float>(rng.Uniform(-87.0, 88.0));
    const std::int32_t u = UlpDiff(FastExp(x), RefExp(x));
    if (u > worst) {
      worst = u;
      worst_x = x;
    }
  }
  EXPECT_LT(worst, 3) << "worst ulp error at x=" << worst_x;
}

TEST(FastExpTest, ExactAtZeroAndAccurateNearIt) {
  EXPECT_EQ(FastExp(0.0f), 1.0f);
  EXPECT_EQ(FastExp(-0.0f), 1.0f);
  // Softmax feeds FastExp values at-or-just-below zero constantly; keep
  // the neighborhood tight.
  for (const float x : {-1e-7f, 1e-7f, -0.5f, 0.5f, -1.0f, 1.0f}) {
    EXPECT_LT(UlpDiff(FastExp(x), RefExp(x)), 3) << "x=" << x;
  }
}

TEST(FastExpTest, ClampBoundariesMatchLibm) {
  // The clamp constants themselves are in-domain: accuracy must hold at
  // exactly the boundary inputs, not just strictly inside them.
  const float lo = -87.33654f;
  const float hi = 88.72283f;
  EXPECT_LT(UlpDiff(FastExp(lo), RefExp(lo)), 3);
  EXPECT_LT(UlpDiff(FastExp(hi), RefExp(hi)), 3);
  EXPECT_TRUE(std::isfinite(FastExp(hi)));  // exp(88.72283) < FLT_MAX
}

TEST(FastExpTest, UnderflowClampsToNormalFloor) {
  const float floor = FastExp(-87.33654f);
  // The documented denormal-avoidance floor: ~1.2e-38, a *normal* float.
  EXPECT_GT(floor, 0.0f);
  EXPECT_GE(floor, FLT_MIN);
  EXPECT_TRUE(std::isnormal(floor));
  // Everything below the clamp lands exactly on the floor — including
  // -inf, which a softmax shift can produce for masked-out entries.
  EXPECT_EQ(FastExp(-88.0f), floor);
  EXPECT_EQ(FastExp(-100.0f), floor);
  EXPECT_EQ(FastExp(-1e30f), floor);
  EXPECT_EQ(FastExp(-std::numeric_limits<float>::infinity()), floor);
}

TEST(FastExpTest, OverflowClampsFinite) {
  const float ceil = FastExp(88.72283f);
  EXPECT_TRUE(std::isfinite(ceil));
  EXPECT_EQ(FastExp(89.0f), ceil);
  EXPECT_EQ(FastExp(1e30f), ceil);
  EXPECT_EQ(FastExp(std::numeric_limits<float>::infinity()), ceil);
}

TEST(FastExpTest, ExpShiftedMatchesElementwiseFastExp) {
  Rng rng(7);
  const std::int64_t n = 257;
  std::vector<float> in(static_cast<size_t>(n)), out(static_cast<size_t>(n));
  for (auto& v : in) v = static_cast<float>(rng.Uniform(-30.0, 2.0));
  const float shift = 1.25f;
  ExpShifted(in.data(), shift, out.data(), n);
  for (std::int64_t k = 0; k < n; ++k) {
    EXPECT_EQ(out[k], FastExp(in[k] - shift)) << "index " << k;
  }
}

}  // namespace
}  // namespace openima::la
