#include <gtest/gtest.h>

#include "src/eval/experiment.h"
#include "src/eval/method_factory.h"

namespace openima::eval {
namespace {

ExperimentOptions TinyOptions() {
  ExperimentOptions options;
  options.scale = 0.01;  // floor kicks in: 60 * num_classes nodes
  options.max_feature_dim = 12;
  options.num_seeds = 1;
  options.hidden_dim = 16;
  options.num_heads = 2;
  options.embedding_dim = 16;
  options.epochs_two_stage = 3;
  options.epochs_end_to_end = 3;
  options.batch_size = 256;
  return options;
}

TEST(MethodFactoryTest, AllTwelveMethodsListed) {
  const auto& keys = AllMethodKeys();
  EXPECT_EQ(keys.size(), 12u);
  for (const auto& key : keys) {
    auto name = MethodDisplayName(key);
    EXPECT_TRUE(name.ok()) << key;
    EXPECT_FALSE(name->empty());
  }
  EXPECT_FALSE(MethodDisplayName("bogus").ok());
}

TEST(MethodFactoryTest, InstantiatesEveryMethod) {
  MethodContext ctx;
  ctx.in_dim = 8;
  ctx.num_seen = 2;
  ctx.num_novel = 2;
  ctx.encoder.hidden_dim = 8;
  ctx.encoder.embedding_dim = 8;
  ctx.encoder.num_heads = 2;
  for (const auto& key : AllMethodKeys()) {
    auto model = MakeClassifier(key, ctx);
    ASSERT_TRUE(model.ok()) << key;
    EXPECT_NE(*model, nullptr);
  }
  EXPECT_FALSE(MakeClassifier("bogus", ctx).ok());
}

TEST(MethodFactoryTest, OpenImaConfigInheritsContext) {
  MethodContext ctx;
  ctx.in_dim = 8;
  ctx.num_seen = 3;
  ctx.num_novel = 2;
  ctx.eta = 10.0f;
  ctx.tau = 0.07f;
  ctx.rho_pct = 25.0;
  ctx.large_scale = true;
  core::OpenImaConfig config = MakeOpenImaConfig(ctx);
  EXPECT_EQ(config.num_classes(), 5);
  EXPECT_FLOAT_EQ(config.eta, 10.0f);
  EXPECT_FLOAT_EQ(config.tau, 0.07f);
  EXPECT_EQ(config.rho_pct, 25.0);
  EXPECT_TRUE(config.large_graph_mode);
}

TEST(ExperimentTest, ContextAppliesPaperHyperparameters) {
  ExperimentOptions options = TinyOptions();
  auto photos = *graph::GetBenchmark("amazon_photos");
  MethodContext ctx = MakeContext(photos, "openima", options, 4, 4, 16, 1);
  EXPECT_FLOAT_EQ(ctx.tau, 0.07f);
  EXPECT_EQ(ctx.rho_pct, 75.0);
  EXPECT_LT(ctx.eta, 1.0f) << "CE scale reduced on Photos (see EXPERIMENTS.md)";

  auto citeseer = *graph::GetBenchmark("citeseer");
  ctx = MakeContext(citeseer, "openima", options, 3, 3, 16, 1);
  EXPECT_FLOAT_EQ(ctx.eta, 1.0f);
  EXPECT_EQ(ctx.rho_pct, 25.0);

  // Two-stage methods use the two-stage epoch budget.
  EXPECT_EQ(ctx.epochs, options.epochs_two_stage);
  ctx = MakeContext(citeseer, "orca", options, 3, 3, 16, 1);
  EXPECT_EQ(ctx.epochs, options.epochs_end_to_end);
}

TEST(ExperimentTest, DatasetAndSplitDeterministic) {
  ExperimentOptions options = TinyOptions();
  auto spec = *graph::GetBenchmark("citeseer");
  auto d1 = MakeExperimentDataset(spec, options);
  auto d2 = MakeExperimentDataset(spec, options);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->labels, d2->labels);
  auto s1 = MakeExperimentSplit(*d1, spec, options, 0);
  auto s2 = MakeExperimentSplit(*d1, spec, options, 0);
  auto s3 = MakeExperimentSplit(*d1, spec, options, 1);
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(s1->train_nodes, s2->train_nodes);
  EXPECT_TRUE(s1->train_nodes != s3->train_nodes ||
              s1->seen_classes != s3->seen_classes);
}

TEST(ExperimentTest, RunMethodProducesSaneAggregate) {
  ExperimentOptions options = TinyOptions();
  options.compute_extra_metrics = true;
  auto spec = *graph::GetBenchmark("citeseer");
  auto result = RunMethod(spec, "infonce", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->display_name, "InfoNCE");
  ASSERT_EQ(result->seeds.size(), 1u);
  EXPECT_GT(result->MeanAll(), 0.0);
  EXPECT_LE(result->MeanAll(), 1.0);
  EXPECT_GT(result->seeds[0].test.n_all, 0);
  EXPECT_GE(result->seeds[0].silhouette, -1.0);
  EXPECT_LE(result->seeds[0].silhouette, 1.0);
  EXPECT_GT(result->seeds[0].variance.imbalance_rate, 0.0);
}

TEST(ExperimentTest, OverrideNovelCountChangesModel) {
  ExperimentOptions options = TinyOptions();
  options.override_num_novel = 5;
  auto spec = *graph::GetBenchmark("citeseer");
  auto result = RunMethod(spec, "openima", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->MeanAll(), 0.0);
}

TEST(ExperimentTest, UnknownMethodRejected) {
  auto spec = *graph::GetBenchmark("citeseer");
  EXPECT_FALSE(RunMethod(spec, "bogus", TinyOptions()).ok());
}

}  // namespace
}  // namespace openima::eval
