#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/clustering_accuracy.h"
#include "src/metrics/sc_acc.h"
#include "src/metrics/variance_stats.h"
#include "src/util/rng.h"

namespace openima::metrics {
namespace {

// ---------------------------------------------------------------------------
// Open-world clustering accuracy (GCD protocol)
// ---------------------------------------------------------------------------

TEST(EvaluateOpenWorldTest, PerfectPredictionIsOne) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  auto acc = EvaluateOpenWorld(labels, labels, /*num_seen=*/2, 3);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(acc->all, 1.0);
  EXPECT_DOUBLE_EQ(acc->seen, 1.0);
  EXPECT_DOUBLE_EQ(acc->novel, 1.0);
  EXPECT_EQ(acc->n_seen, 4);
  EXPECT_EQ(acc->n_novel, 2);
}

TEST(EvaluateOpenWorldTest, InvariantToPredictionRelabeling) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  std::vector<int> permuted = {5, 5, 0, 0, 9, 9};  // same partition
  auto acc = EvaluateOpenWorld(permuted, labels, 2, 3);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(acc->all, 1.0);
}

TEST(EvaluateOpenWorldTest, PartialErrorsCounted) {
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  std::vector<int> preds = {0, 0, 1, 1, 1, 1};  // one mistake
  auto acc = EvaluateOpenWorld(preds, labels, 1, 2);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(acc->all, 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(acc->seen, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(acc->novel, 1.0, 1e-9);
}

TEST(EvaluateOpenWorldTest, SingleHungarianAcrossAllClasses) {
  // Predictions collapse the seen and a novel class together; the single
  // global alignment can only credit one of them.
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<int> preds = {0, 0, 0, 0};
  auto acc = EvaluateOpenWorld(preds, labels, 1, 2);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(acc->all, 0.5, 1e-9);
  EXPECT_EQ(acc->seen + acc->novel, 1.0);
}

TEST(EvaluateOpenWorldTest, MorePredictionIdsThanClasses) {
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<int> preds = {0, 1, 2, 2};  // 3 ids for 2 classes
  auto acc = EvaluateOpenWorld(preds, labels, 1, 2);
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(acc->all, 0.75, 1e-9);
}

TEST(EvaluateOpenWorldTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluateOpenWorld({0}, {0, 1}, 1, 2).ok());
  EXPECT_FALSE(EvaluateOpenWorld({}, {}, 1, 2).ok());
  EXPECT_FALSE(EvaluateOpenWorld({-1}, {0}, 1, 1).ok());
  EXPECT_FALSE(EvaluateOpenWorld({0}, {5}, 1, 2).ok());
  EXPECT_FALSE(EvaluateOpenWorld({0}, {0}, 3, 2).ok());
}

TEST(ClusteringAccuracyTest, ClosedSetAlignment) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  std::vector<int> preds = {2, 2, 0, 0, 1, 1};
  auto acc = ClusteringAccuracy(preds, labels, 3);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

// ---------------------------------------------------------------------------
// Variance statistics (Eq. 2 / Eq. 3)
// ---------------------------------------------------------------------------

la::Matrix TwoClassEmbeddings(double std1, double std2, double distance,
                              int per, Rng* rng, std::vector<int>* labels) {
  la::Matrix emb(2 * per, 3);
  labels->clear();
  for (int i = 0; i < per; ++i) {
    labels->push_back(0);
    for (int j = 0; j < 3; ++j) {
      emb(i, j) = static_cast<float>(rng->Normal(0.0, std1 / std::sqrt(3.0)));
    }
  }
  for (int i = per; i < 2 * per; ++i) {
    labels->push_back(1);
    emb(i, 0) = static_cast<float>(distance);
    for (int j = 0; j < 3; ++j) {
      emb(i, j) += static_cast<float>(rng->Normal(0.0, std2 / std::sqrt(3.0)));
    }
  }
  return emb;
}

TEST(VarianceStatsTest, ClassMomentsMatchConstruction) {
  Rng rng(1);
  std::vector<int> labels;
  la::Matrix emb = TwoClassEmbeddings(1.0, 2.0, 10.0, 400, &rng, &labels);
  auto moments = ComputeClassMoments(emb, labels, 2);
  ASSERT_EQ(moments.size(), 2u);
  EXPECT_EQ(moments[0].count, 400);
  EXPECT_NEAR(moments[0].std, 1.0, 0.15);
  EXPECT_NEAR(moments[1].std, 2.0, 0.3);
  EXPECT_NEAR(moments[1].mean(0, 0), 10.0, 0.3);
}

TEST(VarianceStatsTest, ImbalanceRateMatchesSigmaRatio) {
  Rng rng(2);
  std::vector<int> labels;
  la::Matrix emb = TwoClassEmbeddings(1.0, 2.0, 10.0, 500, &rng, &labels);
  auto stats = ComputeVarianceStats(emb, labels, /*num_seen=*/1, 2);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->imbalance_rate, 2.0, 0.25);
  // separation = 10 / (1 + 2).
  EXPECT_NEAR(stats->separation_rate, 10.0 / 3.0, 0.4);
  EXPECT_EQ(stats->num_pairs, 1);
}

TEST(VarianceStatsTest, BalancedClassesHaveRateNearOne) {
  Rng rng(3);
  std::vector<int> labels;
  la::Matrix emb = TwoClassEmbeddings(1.5, 1.5, 5.0, 500, &rng, &labels);
  auto stats = ComputeVarianceStats(emb, labels, 1, 2);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->imbalance_rate, 1.0, 0.1);
}

TEST(VarianceStatsTest, AveragesOverAllSeenNovelPairs) {
  // 2 seen + 2 novel classes at distinct corners.
  la::Matrix emb(8, 2);
  std::vector<int> labels;
  const float corners[4][2] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 2; ++i) {
      const int row = c * 2 + i;
      emb(row, 0) = corners[c][0] + (i == 0 ? -0.5f : 0.5f);
      emb(row, 1) = corners[c][1];
      labels.push_back(c);
    }
  }
  auto stats = ComputeVarianceStats(emb, labels, 2, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_pairs, 4);
  EXPECT_NEAR(stats->imbalance_rate, 1.0, 1e-5);
}

TEST(VarianceStatsTest, RejectsDegenerateInputs) {
  la::Matrix emb(4, 2);
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_FALSE(ComputeVarianceStats(emb, labels, 0, 2).ok());
  EXPECT_FALSE(ComputeVarianceStats(emb, labels, 2, 2).ok());
  // Classes with zero variance (all-identical points) are skipped -> error.
  EXPECT_FALSE(ComputeVarianceStats(emb, labels, 1, 2).ok());
}

// ---------------------------------------------------------------------------
// SC&ACC selection metric
// ---------------------------------------------------------------------------

TEST(ScAccTest, CombinesNormalizedScores) {
  auto combined = CombineScAcc({0.0, 1.0}, {1.0, 0.0});
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR((*combined)[0], 0.5, 1e-9);
  EXPECT_NEAR((*combined)[1], 0.5, 1e-9);
}

TEST(ScAccTest, PicksJointWinner) {
  // Candidate 2 is best on both metrics.
  auto combined = CombineScAcc({0.1, 0.2, 0.9}, {0.5, 0.6, 0.8});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(ArgmaxIndex(*combined), 2);
}

TEST(ScAccTest, WeightShiftsPreference) {
  const std::vector<double> sc = {1.0, 0.0};
  const std::vector<double> acc = {0.0, 1.0};
  auto sc_only = CombineScAcc(sc, acc, 1.0);
  ASSERT_TRUE(sc_only.ok());
  EXPECT_EQ(ArgmaxIndex(*sc_only), 0);
  auto acc_only = CombineScAcc(sc, acc, 0.0);
  ASSERT_TRUE(acc_only.ok());
  EXPECT_EQ(ArgmaxIndex(*acc_only), 1);
}

TEST(ScAccTest, ConstantListTreatedAsNeutral) {
  auto combined = CombineScAcc({0.5, 0.5}, {0.2, 0.9});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(ArgmaxIndex(*combined), 1);
}

TEST(ScAccTest, RejectsBadInput) {
  EXPECT_FALSE(CombineScAcc({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(CombineScAcc({}, {}).ok());
  EXPECT_FALSE(CombineScAcc({1.0}, {1.0}, 2.0).ok());
}

}  // namespace
}  // namespace openima::metrics
