#include <gtest/gtest.h>

#include <cmath>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/graph/graph.h"
#include "src/nn/gcn.h"

namespace openima::nn {
namespace {

namespace ops = autograd::ops;
using autograd::Variable;

graph::Graph PathGraph(int n) {
  graph::GraphBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return builder.Build(/*add_self_loops=*/true);
}

TEST(GcnAggregateTest, MatchesHandComputedNormalization) {
  // Path 0-1-2 with self-loops: degrees (incl. self) are 2, 3, 2.
  graph::Graph g = PathGraph(3);
  la::Matrix x({{1.0f}, {2.0f}, {4.0f}});
  Variable out = GcnAggregate(g, Variable::Leaf(x, false));
  const double d0 = std::sqrt(2.0), d1 = std::sqrt(3.0), d2 = std::sqrt(2.0);
  EXPECT_NEAR(out.value()(0, 0), 1.0 / (d0 * d0) + 2.0 / (d0 * d1), 1e-5);
  EXPECT_NEAR(out.value()(1, 0),
              1.0 / (d1 * d0) + 2.0 / (d1 * d1) + 4.0 / (d1 * d2), 1e-5);
  EXPECT_NEAR(out.value()(2, 0), 2.0 / (d2 * d1) + 4.0 / (d2 * d2), 1e-5);
}

TEST(GcnAggregateTest, IsolatedNodePassesThrough) {
  graph::GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  graph::Graph g = graph::Graph::FromUndirectedEdges(3, {{0, 1}}, true);
  la::Matrix x({{1.0f}, {1.0f}, {7.0f}});
  Variable out = GcnAggregate(g, Variable::Leaf(x, false));
  EXPECT_NEAR(out.value()(2, 0), 7.0f, 1e-5);  // self-loop, degree 1
}

TEST(GcnAggregateTest, Gradcheck) {
  graph::Graph g = PathGraph(4);
  Rng rng(1);
  std::vector<Variable> leaves = {
      Variable::Leaf(la::Matrix::Normal(4, 3, 0.0f, 1.0f, &rng), true)};
  auto fn = [&g](const std::vector<Variable>& v) {
    Variable out = GcnAggregate(g, v[0]);
    return ops::MeanAll(ops::Mul(out, out));
  };
  auto result = autograd::CheckGradients(fn, &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure;
}

TEST(GcnEncoderTest, ShapesAndDeterminism) {
  Rng rng(2);
  GatEncoderConfig cfg;
  cfg.arch = EncoderArch::kGcn;
  cfg.in_dim = 5;
  cfg.hidden_dim = 8;
  cfg.embedding_dim = 6;
  cfg.dropout = 0.5f;
  GcnEncoder enc(cfg, &rng);
  graph::Graph g = PathGraph(6);
  la::Matrix x = la::Matrix::Normal(6, 5, 0.0f, 1.0f, &rng);
  Variable features = Variable::Leaf(x, false);
  Variable e1 = enc.Forward(g, features, false, nullptr);
  Variable e2 = enc.Forward(g, features, false, nullptr);
  EXPECT_EQ(e1.rows(), 6);
  EXPECT_EQ(e1.cols(), 6);
  EXPECT_TRUE(e1.value() == e2.value());
  EXPECT_EQ(enc.embedding_dim(), 6);

  Variable t1 = enc.Forward(g, features, true, &rng);
  Variable t2 = enc.Forward(g, features, true, &rng);
  EXPECT_FALSE(t1.value() == t2.value()) << "dropout views must differ";
}

TEST(GcnEncoderTest, GradientReachesAllParameters) {
  Rng rng(3);
  GatEncoderConfig cfg;
  cfg.arch = EncoderArch::kGcn;
  cfg.in_dim = 4;
  cfg.hidden_dim = 4;
  cfg.embedding_dim = 3;
  cfg.dropout = 0.0f;
  GcnEncoder enc(cfg, &rng);
  graph::Graph g = PathGraph(5);
  la::Matrix x = la::Matrix::Normal(5, 4, 0.0f, 1.0f, &rng);
  Variable out = enc.Forward(g, Variable::Leaf(x, false), true, &rng);
  ops::MeanAll(ops::Mul(out, out)).Backward();
  for (const auto& p : enc.parameters()) {
    EXPECT_TRUE(p.HasGrad());
  }
  // 2 Linear layers with bias.
  EXPECT_EQ(enc.NumParameters(), 4 * 4 + 4 + 4 * 3 + 3);
}

TEST(MakeEncoderTest, BuildsRequestedArchitecture) {
  Rng rng(4);
  GatEncoderConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 4;
  cfg.embedding_dim = 4;
  cfg.num_heads = 2;
  cfg.arch = EncoderArch::kGat;
  auto gat = MakeEncoder(cfg, &rng);
  EXPECT_NE(dynamic_cast<GatEncoder*>(gat.get()), nullptr);
  cfg.arch = EncoderArch::kGcn;
  auto gcn = MakeEncoder(cfg, &rng);
  EXPECT_NE(dynamic_cast<GcnEncoder*>(gcn.get()), nullptr);
  EXPECT_EQ(gcn->embedding_dim(), 4);
}

}  // namespace
}  // namespace openima::nn
