// Live-serving observability (DESIGN.md §2.10): the rolling-window metric
// layer's logical-clock determinism, the MetricsExporter's snapshot formats
// (ordered JSON + Prometheus text exposition) — including the acceptance
// pin that exported bytes are identical across thread counts under the
// logical clock — and the online drift monitor's baseline/alert/abort
// behaviour.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.h"
#include "src/obs/run_diff.h"

namespace openima::obs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Restores the process-wide rolling clock around each test that touches it.
struct ClockGuard {
  ClockGuard() { RollingClock::ResetForTest(); }
  ~ClockGuard() { RollingClock::ResetForTest(); }
};

// ------------------------------------------------------- rolling clock --

TEST(RollingTest, LogicalClockCountsTicks) {
  ClockGuard guard;
  EXPECT_EQ(RollingClock::Now(), 0);
  EXPECT_FALSE(RollingClock::wall_clock());
  EXPECT_EQ(RollingClock::Tick(), 1);
  EXPECT_EQ(RollingClock::Tick(), 2);
  EXPECT_EQ(RollingClock::Now(), 2);
}

TEST(RollingTest, WallClockModeAdvancesWithoutTick) {
  ClockGuard guard;
  RollingClock::EnableWallClock(1);  // 1ms ticks
  EXPECT_TRUE(RollingClock::wall_clock());
  const int64_t t0 = RollingClock::Now();
  // Tick() is a no-op in wall mode; time itself moves the clock.
  RollingClock::Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(RollingClock::Now(), t0);
  RollingClock::DisableWallClock();
  EXPECT_FALSE(RollingClock::wall_clock());
}

// ----------------------------------------------------- rolling counter --

TEST(RollingTest, CounterWindowExpiresOldTicks) {
  ClockGuard guard;
  RollingCounter counter(/*window_ticks=*/4);
  counter.Add(10);  // tick 0
  RollingClock::Tick();
  counter.Add(5);  // tick 1
  RollingCounterSnapshot snap = counter.WindowSnapshot();
  EXPECT_EQ(snap.total, 15);
  EXPECT_EQ(snap.window, 4);
  EXPECT_DOUBLE_EQ(snap.rate, 15.0 / 4.0);

  // Advance until tick 0 leaves the window (window covers (now-4, now]).
  RollingClock::Tick();  // 2
  RollingClock::Tick();  // 3
  RollingClock::Tick();  // 4: tick 0 now out of range, tick 1 still in
  EXPECT_EQ(counter.WindowTotal(), 5);
  RollingClock::Tick();  // 5: everything expired
  EXPECT_EQ(counter.WindowTotal(), 0);

  // Slots recycle: new traffic lands cleanly after expiry.
  counter.Add(7);
  EXPECT_EQ(counter.WindowTotal(), 7);
  counter.Reset();
  EXPECT_EQ(counter.WindowTotal(), 0);
}

TEST(RollingTest, CounterWindowTotalIsThreadCountInvariant) {
  ClockGuard guard;
  std::vector<int64_t> totals;
  for (int threads : {1, 2, 4}) {
    RollingClock::ResetForTest();
    RollingCounter counter(/*window_ticks=*/8);
    for (int tick = 0; tick < 6; ++tick) {
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&counter, threads, t] {
          // 120 increments per tick, partitioned across the pool.
          for (int i = t; i < 120; i += threads) counter.Add(1);
        });
      }
      for (auto& th : pool) th.join();
      RollingClock::Tick();
    }
    totals.push_back(counter.WindowTotal());
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
  EXPECT_EQ(totals[0], 6 * 120);
}

// --------------------------------------------------- rolling histogram --

TEST(RollingTest, HistogramWindowMergesAndExpires) {
  ClockGuard guard;
  RollingHistogram hist(/*window_ticks=*/4);
  hist.Record(10);
  hist.Record(100);
  RollingClock::Tick();
  hist.Record(1000);

  RollingHistogramSnapshot snap = hist.WindowSnapshot();
  EXPECT_EQ(snap.hist.count, 3);
  EXPECT_EQ(snap.hist.sum, 1110);
  EXPECT_EQ(snap.hist.min, 10);
  EXPECT_EQ(snap.hist.max, 1000);
  const double p50 = HistogramQuantile(snap.hist, 0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 1000.0);

  // Advance to tick 4: the window (0, 4] drops the first tick's two
  // records; only the 1000 recorded at tick 1 remains.
  for (int i = 0; i < 3; ++i) RollingClock::Tick();
  snap = hist.WindowSnapshot();
  EXPECT_EQ(snap.hist.count, 1);
  EXPECT_EQ(snap.hist.min, 1000);
  EXPECT_EQ(snap.hist.max, 1000);

  // Fully expired window: the canonical empty snapshot (min/max 0).
  RollingClock::Tick();
  snap = hist.WindowSnapshot();
  EXPECT_EQ(snap.hist.count, 0);
  EXPECT_EQ(snap.hist.sum, 0);
  EXPECT_EQ(snap.hist.min, 0);
  EXPECT_EQ(snap.hist.max, 0);
  EXPECT_EQ(HistogramQuantile(snap.hist, 0.99), 0.0);
}

TEST(RollingTest, RegistryReturnsStableHandlesAndSortedSnapshots) {
  ClockGuard guard;
  RollingRegistry registry;
  RollingCounter* c = registry.counter("b.requests");
  EXPECT_EQ(c, registry.counter("b.requests"));
  registry.counter("a.nodes")->Add(3);
  c->Add(1);
  registry.histogram("lat_ns")->Record(50);

  auto counters = registry.CounterSnapshots();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a.nodes");  // name-sorted
  EXPECT_EQ(counters.at("a.nodes").total, 3);
  EXPECT_EQ(counters.at("b.requests").total, 1);
  auto histograms = registry.HistogramSnapshots();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms.at("lat_ns").hist.count, 1);

  registry.Reset();
  EXPECT_EQ(registry.CounterSnapshots().at("a.nodes").total, 0);
}

// --------------------------------------------------------- exporter --

// Feeds one deterministic workload into local registries, partitioned over
// `threads` workers: per tick, every update is issued (by whichever worker
// owns it), then the main thread ticks the clock. The update multiset per
// tick is identical for every thread count.
void FeedWorkload(MetricsRegistry* metrics, RollingRegistry* rolling,
                  int threads) {
  for (int tick = 0; tick < 5; ++tick) {
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < 64; i += threads) {
          metrics->counter("serve.requests")->Increment();
          metrics->histogram("time/serve.request_ns")->Record(1000 + 10 * i);
          rolling->counter("serve.requests")->Increment();
          rolling->histogram("serve.request_ns")->Record(1000 + 10 * i);
        }
      });
    }
    for (auto& th : pool) th.join();
    metrics->gauge("train.loss")->Set(0.5 - 0.01 * tick);
    RollingClock::Tick();
  }
}

// Acceptance criterion: under the logical clock, exported snapshot bytes
// are a pure function of the recorded updates — identical across 1/2/4
// worker threads, for both the JSON document and the Prometheus text.
TEST(ExporterTest, SnapshotBytesAreThreadCountInvariant) {
  ClockGuard guard;
  std::vector<std::string> json_dumps;
  std::vector<std::string> prom_dumps;
  for (int threads : {1, 2, 4}) {
    RollingClock::ResetForTest();
    MetricsRegistry metrics;
    RollingRegistry rolling;
    FeedWorkload(&metrics, &rolling, threads);
    const json::Value doc = MetricsExporter::SnapshotJson(
        metrics.Snapshot(), rolling.CounterSnapshots(),
        rolling.HistogramSnapshots(), RollingClock::Now(), /*sequence=*/1);
    json_dumps.push_back(doc.Dump(1));
    prom_dumps.push_back(MetricsExporter::PrometheusText(
        metrics.Snapshot(), rolling.CounterSnapshots(),
        rolling.HistogramSnapshots(), RollingClock::Now(), /*sequence=*/1));
  }
  EXPECT_EQ(json_dumps[0], json_dumps[1]);
  EXPECT_EQ(json_dumps[0], json_dumps[2]);
  EXPECT_EQ(prom_dumps[0], prom_dumps[1]);
  EXPECT_EQ(prom_dumps[0], prom_dumps[2]);
}

TEST(ExporterTest, SnapshotJsonCarriesSchemaAndWindows) {
  ClockGuard guard;
  MetricsRegistry metrics;
  RollingRegistry rolling;
  FeedWorkload(&metrics, &rolling, 1);

  const json::Value doc = MetricsExporter::SnapshotJson(
      metrics.Snapshot(), rolling.CounterSnapshots(),
      rolling.HistogramSnapshots(), RollingClock::Now(), /*sequence=*/3);
  EXPECT_EQ(doc.at("schema").AsString(), "openima-metrics-snapshot");
  EXPECT_EQ(doc.at("sequence").AsInt(), 3);
  EXPECT_EQ(doc.at("tick").AsInt(), 5);
  EXPECT_EQ(doc.at("counters").at("serve.requests").AsInt(), 5 * 64);
  EXPECT_TRUE(doc.at("gauges").Has("train.loss"));

  const json::Value& hist = doc.at("histograms").at("time/serve.request_ns");
  EXPECT_EQ(hist.at("count").AsInt(), 5 * 64);
  EXPECT_GE(hist.at("p999").AsDouble(), hist.at("p50").AsDouble());

  const json::Value& wc = doc.at("windows").at("counters").at("serve.requests");
  EXPECT_EQ(wc.at("window").AsInt(), kDefaultWindowTicks);
  EXPECT_EQ(wc.at("total").AsInt(), 5 * 64);
  const json::Value& wh =
      doc.at("windows").at("histograms").at("serve.request_ns");
  EXPECT_EQ(wh.at("count").AsInt(), 5 * 64);
  EXPECT_GE(wh.at("max").AsDouble(), wh.at("min").AsDouble());
}

TEST(ExporterTest, PrometheusTextExposesCumulativeBuckets) {
  ClockGuard guard;
  MetricsRegistry metrics;
  RollingRegistry rolling;
  metrics.counter("serve.requests")->Add(7);
  metrics.histogram("time/forward_ns")->Record(3);

  const std::string text = MetricsExporter::PrometheusText(
      metrics.Snapshot(), rolling.CounterSnapshots(),
      rolling.HistogramSnapshots(), /*tick=*/0, /*sequence=*/1);
  EXPECT_NE(text.find("# TYPE openima_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("openima_serve_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE openima_time_forward_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("openima_time_forward_ns_sum 3"), std::string::npos);
  EXPECT_NE(text.find("openima_time_forward_ns_count 1"), std::string::npos);
}

TEST(ExporterTest, ExportNowRoundTripsAndValidates) {
  ClockGuard guard;
  MetricsRegistry metrics;
  RollingRegistry rolling;
  FeedWorkload(&metrics, &rolling, 2);

  ExporterOptions options;
  options.path = TempPath("live_obs_export.json");
  options.registry = &metrics;
  options.rolling = &rolling;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.ExportNow().ok());

  // The written JSON is a valid run_diff artifact of the snapshot type.
  ASSERT_TRUE(ValidateArtifact(options.path).ok());
  ArtifactType type = ArtifactType::kUnknown;
  auto loaded = LoadArtifact(options.path, &type);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(type, ArtifactType::kMetricsSnapshot);
  EXPECT_EQ(loaded->at("counters").at("serve.requests").AsInt(), 5 * 64);

  // The Prometheus twin sits next to it.
  const std::string prom = ReadFileOrDie(options.path + ".prom");
  EXPECT_NE(prom.find("openima_serve_requests"), std::string::npos);

  // Identical state diffs clean against itself under the default rules.
  DiffOptions diff_options;
  auto diff = DiffArtifacts(options.path, options.path, diff_options);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->ok());
  std::remove(options.path.c_str());
  std::remove((options.path + ".prom").c_str());
}

TEST(ExporterTest, BackgroundThreadWritesAndStops) {
  if (!kCompiledIn) GTEST_SKIP() << "exporter thread needs OPENIMA_OBS=ON";
  ClockGuard guard;
  MetricsRegistry metrics;
  RollingRegistry rolling;
  metrics.counter("beat")->Add(1);

  ExporterOptions options;
  options.path = TempPath("live_obs_bg.json");
  options.interval_ms = 3600 * 1000;  // rely on Notify + final export only
  options.registry = &metrics;
  options.rolling = &rolling;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_TRUE(exporter.Start().ok());  // idempotent
  exporter.Notify();
  exporter.Stop();  // runs one final export
  EXPECT_GE(exporter.exports_done(), 1);
  const std::string text = ReadFileOrDie(options.path);
  auto doc = json::Value::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("schema").AsString(), "openima-metrics-snapshot");
  std::remove(options.path.c_str());
  std::remove((options.path + ".prom").c_str());
}

// ------------------------------------------------------ drift monitor --

DriftMonitorOptions SmallDriftOptions(WatchdogPolicy policy) {
  DriftMonitorOptions options;
  options.policy = policy;
  options.window = 20;
  options.baseline_windows = 1;
  options.novel_fraction_delta = 0.15;
  options.entropy_delta = 0.5;
  options.distance_rel_delta = 0.5;
  return options;
}

// One window of in-distribution traffic: 10% novel, classes balanced,
// distance2 near 0.2.
void FeedInDistributionWindow(DriftMonitor* monitor) {
  for (int i = 0; i < 20; ++i) {
    monitor->Observe(/*class_id=*/i % 4, /*is_novel=*/i % 10 == 0,
                     /*distance2=*/0.2);
  }
}

TEST(DriftTest, InDistributionTrafficStaysQuiet) {
  if (!kCompiledIn) GTEST_SKIP() << "drift monitor needs OPENIMA_OBS=ON";
  DriftMonitor monitor(SmallDriftOptions(WatchdogPolicy::kRecord), 4);
  FeedInDistributionWindow(&monitor);  // calibration window
  DriftStats stats = monitor.stats();
  EXPECT_EQ(stats.windows_completed, 1);
  EXPECT_TRUE(stats.baseline_set);
  EXPECT_DOUBLE_EQ(stats.baseline_novel_fraction, 0.1);
  EXPECT_EQ(stats.alerts, 0);

  for (int w = 0; w < 3; ++w) FeedInDistributionWindow(&monitor);
  stats = monitor.stats();
  EXPECT_EQ(stats.windows_completed, 4);
  EXPECT_EQ(stats.alerts, 0) << "in-distribution windows must not alert";
  EXPECT_TRUE(monitor.ConsumeStatus().ok());
}

TEST(DriftTest, NovelHeavyMixAlertsWithinOneWindow) {
  if (!kCompiledIn) GTEST_SKIP() << "drift monitor needs OPENIMA_OBS=ON";
  DriftMonitor monitor(SmallDriftOptions(WatchdogPolicy::kRecord), 4);
  FeedInDistributionWindow(&monitor);  // calibration

  // Novel-heavy shift: 80% novel vs the 10% baseline — well past the 0.15
  // novel-fraction threshold. One window is enough.
  for (int i = 0; i < 20; ++i) {
    monitor.Observe(i % 4, /*is_novel=*/i % 5 != 0, /*distance2=*/0.2);
  }
  DriftStats stats = monitor.stats();
  EXPECT_EQ(stats.windows_completed, 2);
  EXPECT_GE(stats.alerts, 1) << "novel-heavy window must alert";
  EXPECT_DOUBLE_EQ(stats.last_novel_fraction, 0.8);
  // kRecord never turns alerts into errors.
  EXPECT_TRUE(monitor.ConsumeStatus().ok());
}

TEST(DriftTest, DistanceBlowupAlerts) {
  if (!kCompiledIn) GTEST_SKIP() << "drift monitor needs OPENIMA_OBS=ON";
  DriftMonitor monitor(SmallDriftOptions(WatchdogPolicy::kRecord), 4);
  FeedInDistributionWindow(&monitor);  // baseline distance2 = 0.2

  // Same class mix and novel rate, but points land far from every center.
  for (int i = 0; i < 20; ++i) {
    monitor.Observe(i % 4, i % 10 == 0, /*distance2=*/5.0);
  }
  EXPECT_GE(monitor.stats().alerts, 1);
}

TEST(DriftTest, AbortPolicyTripsConsumeStatusSticky) {
  if (!kCompiledIn) GTEST_SKIP() << "drift monitor needs OPENIMA_OBS=ON";
  DriftMonitor monitor(SmallDriftOptions(WatchdogPolicy::kAbort), 4);
  FeedInDistributionWindow(&monitor);
  EXPECT_TRUE(monitor.ConsumeStatus().ok());

  for (int i = 0; i < 20; ++i) monitor.Observe(i % 4, true, 0.2);
  Status status = monitor.ConsumeStatus();
  EXPECT_FALSE(status.ok());
  // Sticky, like a watchdog trip: the service stays refused.
  EXPECT_FALSE(monitor.ConsumeStatus().ok());
}

TEST(DriftTest, OptionsFromEnvParsePolicyAndKnobs) {
  ::setenv("OPENIMA_DRIFT", "warn", 1);
  ::setenv("OPENIMA_DRIFT_WINDOW", "33", 1);
  ::setenv("OPENIMA_DRIFT_NOVEL_DELTA", "0.25", 1);
  DriftMonitorOptions options = DriftOptionsFromEnv();
  EXPECT_EQ(options.policy, WatchdogPolicy::kWarn);
  EXPECT_EQ(options.window, 33);
  EXPECT_DOUBLE_EQ(options.novel_fraction_delta, 0.25);

  ::unsetenv("OPENIMA_DRIFT");
  ::unsetenv("OPENIMA_DRIFT_WINDOW");
  ::unsetenv("OPENIMA_DRIFT_NOVEL_DELTA");
  EXPECT_EQ(DriftOptionsFromEnv().policy, WatchdogPolicy::kOff);
}

}  // namespace
}  // namespace openima::obs
