#include <gtest/gtest.h>

#include <cmath>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/graph/graph.h"
#include "src/la/matrix_ops.h"
#include "src/nn/adam.h"
#include "src/nn/gat.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"

namespace openima::nn {
namespace {

namespace ops = autograd::ops;
using autograd::Variable;

graph::Graph PathGraph(int n) {
  graph::GraphBuilder builder(n);
  for (int i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return builder.Build(/*add_self_loops=*/true);
}

// ---------------------------------------------------------------------------
// Init
// ---------------------------------------------------------------------------

TEST(InitTest, GlorotUniformBounds) {
  Rng rng(1);
  la::Matrix w = GlorotUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.MaxAbs(), bound);
  EXPECT_GT(w.MaxAbs(), 0.5f * bound) << "should use most of the range";
  EXPECT_NEAR(w.Mean(), 0.0, 0.01);
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

TEST(LinearTest, ForwardMatchesMatmul) {
  Rng rng(2);
  Linear lin(3, 2, /*use_bias=*/false, &rng);
  la::Matrix x({{1, 0, 0}, {0, 1, 0}});
  Variable out = lin.Forward(Variable::Leaf(x, false));
  EXPECT_EQ(out.value()(0, 0), lin.weight().value()(0, 0));
  EXPECT_EQ(out.value()(1, 1), lin.weight().value()(1, 1));
}

TEST(LinearTest, BiasIsAdded) {
  Rng rng(3);
  Linear lin(2, 2, /*use_bias=*/true, &rng);
  EXPECT_EQ(lin.parameters().size(), 2u);
  la::Matrix x(1, 2);  // zeros
  Variable out = lin.Forward(Variable::Leaf(x, false));
  // With zero input, output equals the bias (initialized to zero).
  EXPECT_EQ(out.value()(0, 0), 0.0f);
}

TEST(LinearTest, ParameterCount) {
  Rng rng(4);
  Linear lin(5, 3, true, &rng);
  EXPECT_EQ(lin.NumParameters(), 5 * 3 + 3);
}

// ---------------------------------------------------------------------------
// GAT attention op
// ---------------------------------------------------------------------------

TEST(GatAttentionTest, ConstantFeaturesPassThrough) {
  // If wh_j is the same vector for every j, the attention-weighted average
  // must reproduce that vector regardless of the attention parameters.
  const int n = 5, f = 3;
  graph::Graph g = PathGraph(n);
  la::Matrix wh(n, f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < f; ++j) wh(i, j) = 2.5f;
  }
  Rng rng(5);
  Variable out = GatAttention(
      g, Variable::Leaf(wh, false),
      Variable::Leaf(GlorotUniform(1, f, &rng), false),
      Variable::Leaf(GlorotUniform(1, f, &rng), false), 0.2f, 0.0f, false,
      nullptr);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < f; ++j) EXPECT_NEAR(out.value()(i, j), 2.5f, 1e-5);
  }
}

TEST(GatAttentionTest, IsolatedNodeAttendsToSelfOnly) {
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // node 2 isolated (self-loop only)
  graph::Graph g = builder.Build(true);
  Rng rng(6);
  la::Matrix wh = la::Matrix::Normal(3, 2, 0.0f, 1.0f, &rng);
  Variable out = GatAttention(
      g, Variable::Leaf(wh, false), Variable::Leaf(la::Matrix(1, 2), false),
      Variable::Leaf(la::Matrix(1, 2), false), 0.2f, 0.0f, false, nullptr);
  EXPECT_NEAR(out.value()(2, 0), wh(2, 0), 1e-5);
  EXPECT_NEAR(out.value()(2, 1), wh(2, 1), 1e-5);
}

TEST(GatAttentionTest, GradcheckWhAndAttentionVectors) {
  const int n = 4, f = 3;
  graph::Graph g = PathGraph(n);
  Rng rng(7);
  std::vector<Variable> leaves = {
      Variable::Leaf(la::Matrix::Normal(n, f, 0.0f, 0.8f, &rng), true),
      Variable::Leaf(la::Matrix::Normal(1, f, 0.0f, 0.8f, &rng), true),
      Variable::Leaf(la::Matrix::Normal(1, f, 0.0f, 0.8f, &rng), true)};
  auto fn = [&g](const std::vector<Variable>& v) {
    Variable out = GatAttention(g, v[0], v[1], v[2], 0.2f, 0.0f, false,
                                nullptr);
    return ops::MeanAll(ops::Mul(out, out));
  };
  auto result = autograd::CheckGradients(fn, &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure << " max err "
                         << result.max_abs_error;
}

TEST(GatAttentionTest, AttentionIsActuallyWeighted) {
  // Two neighbors with very different source scores: output should be
  // pulled toward the higher-scored neighbor, not the plain average.
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  graph::Graph g = builder.Build(true);
  la::Matrix wh({{0.0f}, {1.0f}, {-1.0f}});
  la::Matrix a_src({{4.0f}});  // source score = 4 * wh_j
  la::Matrix a_dst({{0.0f}});
  Variable out = GatAttention(g, Variable::Leaf(wh, false),
                              Variable::Leaf(a_src, false),
                              Variable::Leaf(a_dst, false), 0.2f, 0.0f, false,
                              nullptr);
  // Neighbor 1 (wh=1, score 4) should dominate node 0's average.
  EXPECT_GT(out.value()(0, 0), 0.5f);
}

// ---------------------------------------------------------------------------
// GatLayer / GatEncoder
// ---------------------------------------------------------------------------

TEST(GatLayerTest, OutputShapes) {
  Rng rng(8);
  GatLayerConfig cfg;
  cfg.in_dim = 6;
  cfg.out_dim = 4;
  cfg.num_heads = 3;
  cfg.concat_heads = true;
  GatLayer layer(cfg, &rng);
  graph::Graph g = PathGraph(5);
  la::Matrix x = la::Matrix::Normal(5, 6, 0.0f, 1.0f, &rng);
  Variable out = layer.Forward(g, Variable::Leaf(x, false), false, nullptr);
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 12);

  cfg.concat_heads = false;
  GatLayer avg_layer(cfg, &rng);
  Variable out2 = avg_layer.Forward(g, Variable::Leaf(x, false), false,
                                    nullptr);
  EXPECT_EQ(out2.cols(), 4);
}

TEST(GatLayerTest, ParameterCountMatchesConfig) {
  Rng rng(9);
  GatLayerConfig cfg;
  cfg.in_dim = 6;
  cfg.out_dim = 4;
  cfg.num_heads = 2;
  GatLayer layer(cfg, &rng);
  // Per head: W (6x4) + a_src (1x4) + a_dst (1x4); plus bias (1x8).
  EXPECT_EQ(layer.NumParameters(), 2 * (24 + 4 + 4) + 8);
}

TEST(GatEncoderTest, EvalDeterministicTrainingStochastic) {
  Rng rng(10);
  GatEncoderConfig cfg;
  cfg.in_dim = 5;
  cfg.hidden_dim = 8;
  cfg.embedding_dim = 6;
  cfg.num_heads = 2;
  cfg.dropout = 0.5f;
  GatEncoder enc(cfg, &rng);
  graph::Graph g = PathGraph(6);
  la::Matrix x = la::Matrix::Normal(6, 5, 0.0f, 1.0f, &rng);
  Variable features = Variable::Leaf(x, false);

  Variable e1 = enc.Forward(g, features, false, nullptr);
  Variable e2 = enc.Forward(g, features, false, nullptr);
  EXPECT_TRUE(e1.value() == e2.value()) << "eval mode must be deterministic";
  EXPECT_EQ(e1.cols(), 6);

  Variable t1 = enc.Forward(g, features, true, &rng);
  Variable t2 = enc.Forward(g, features, true, &rng);
  EXPECT_FALSE(t1.value() == t2.value())
      << "training views must differ (SimCSE positive pairs)";
}

TEST(GatEncoderTest, GradientFlowsToAllParameters) {
  Rng rng(11);
  GatEncoderConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 4;
  cfg.embedding_dim = 3;
  cfg.num_heads = 2;
  cfg.dropout = 0.0f;
  GatEncoder enc(cfg, &rng);
  graph::Graph g = PathGraph(5);
  la::Matrix x = la::Matrix::Normal(5, 4, 0.0f, 1.0f, &rng);
  Variable out = enc.Forward(g, Variable::Leaf(x, false), true, &rng);
  ops::MeanAll(ops::Mul(out, out)).Backward();
  int nonzero_params = 0;
  for (const auto& p : enc.parameters()) {
    ASSERT_TRUE(p.HasGrad());
    if (p.grad().MaxAbs() > 0.0f) ++nonzero_params;
  }
  EXPECT_GT(nonzero_params, static_cast<int>(enc.parameters().size()) / 2);
}

TEST(GatEncoderTest, EncoderGradcheckTiny) {
  Rng rng(12);
  GatEncoderConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 2;
  cfg.embedding_dim = 2;
  cfg.num_heads = 1;
  cfg.dropout = 0.0f;
  GatEncoder enc(cfg, &rng);
  graph::Graph g = PathGraph(4);
  la::Matrix x = la::Matrix::Normal(4, 3, 0.0f, 0.8f, &rng);

  // Check gradients w.r.t. all encoder parameters jointly.
  std::vector<Variable> leaves = enc.parameters();
  auto fn = [&](const std::vector<Variable>&) {
    Variable out = enc.Forward(g, Variable::Leaf(x, false), false, nullptr);
    return ops::MeanAll(ops::Mul(out, out));
  };
  auto result = autograd::CheckGradients(fn, &leaves);
  EXPECT_TRUE(result.ok) << result.first_failure << " max err "
                         << result.max_abs_error;
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

TEST(AdamTest, MinimizesQuadratic) {
  Variable x = Variable::Leaf(la::Matrix({{5.0f, -3.0f}}), true);
  AdamOptions opts;
  opts.lr = 0.2f;
  opts.weight_decay = 0.0f;
  Adam adam({x}, opts);
  for (int step = 0; step < 200; ++step) {
    x.ZeroGrad();
    Variable loss = ops::MeanAll(ops::Mul(x, x));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.value()(0, 0), 0.0f, 0.05f);
  EXPECT_NEAR(x.value()(0, 1), 0.0f, 0.05f);
}

TEST(AdamTest, WeightDecayShrinksUnusedWeights) {
  Variable x = Variable::Leaf(la::Matrix({{1.0f}}), true);
  AdamOptions opts;
  opts.lr = 0.01f;
  opts.weight_decay = 1.0f;
  Adam adam({x}, opts);
  for (int step = 0; step < 50; ++step) {
    x.ZeroGrad();  // zero gradient; only decay acts
    adam.Step();
  }
  EXPECT_LT(x.value()(0, 0), 0.9f);
}

TEST(AdamTest, SkipsParametersWithoutGradients) {
  Variable used = Variable::Leaf(la::Matrix({{1.0f}}), true);
  Variable unused = Variable::Leaf(la::Matrix({{2.0f}}), true);
  AdamOptions opts;
  opts.weight_decay = 0.0f;
  Adam adam({used, unused}, opts);
  used.ZeroGrad();
  ops::MeanAll(ops::Mul(used, used)).Backward();
  adam.Step();
  EXPECT_EQ(unused.value()(0, 0), 2.0f) << "no grad -> no update";
  EXPECT_NE(used.value()(0, 0), 1.0f);
}

TEST(AdamTest, StepCountAdvances) {
  Variable x = Variable::Leaf(la::Matrix({{1.0f}}), true);
  Adam adam({x}, AdamOptions{});
  EXPECT_EQ(adam.step_count(), 0);
  x.ZeroGrad();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

}  // namespace
}  // namespace openima::nn
