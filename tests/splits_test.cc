#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/splits.h"
#include "src/graph/synthetic.h"

namespace openima::graph {
namespace {

Dataset MakeTestDataset(int nodes = 600, int classes = 6, uint64_t seed = 1) {
  SbmConfig c;
  c.num_nodes = nodes;
  c.num_classes = classes;
  c.feature_dim = 8;
  auto ds = GenerateSbm(c, seed, "split_test");
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(SplitsTest, PartitionsClassesHalfHalf) {
  Dataset ds = MakeTestDataset();
  auto split = MakeOpenWorldSplit(ds, SplitOptions{}, 3);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->num_seen, 3);
  EXPECT_EQ(split->num_novel, 3);
  EXPECT_EQ(split->seen_classes.size(), 3u);
  EXPECT_EQ(split->novel_classes.size(), 3u);
  // The two class sets are disjoint and cover all classes.
  std::set<int> all(split->seen_classes.begin(), split->seen_classes.end());
  all.insert(split->novel_classes.begin(), split->novel_classes.end());
  EXPECT_EQ(all.size(), 6u);
}

TEST(SplitsTest, RemappedLabelsAreConsistent) {
  Dataset ds = MakeTestDataset();
  auto split = MakeOpenWorldSplit(ds, SplitOptions{}, 4);
  ASSERT_TRUE(split.ok());
  for (int v = 0; v < ds.num_nodes(); ++v) {
    const int orig = ds.labels[static_cast<size_t>(v)];
    const int remapped = split->remapped_labels[static_cast<size_t>(v)];
    const bool is_seen_class =
        std::count(split->seen_classes.begin(), split->seen_classes.end(),
                   orig) > 0;
    if (is_seen_class) {
      EXPECT_LT(remapped, split->num_seen);
    } else {
      EXPECT_GE(remapped, split->num_seen);
      EXPECT_LT(remapped, split->num_total_classes());
    }
    EXPECT_EQ(split->IsNovelClass(remapped), !is_seen_class);
  }
}

TEST(SplitsTest, TrainValTestDisjointAndComplete) {
  Dataset ds = MakeTestDataset();
  SplitOptions options;
  options.labeled_per_class = 20;
  options.val_per_class = 10;
  auto split = MakeOpenWorldSplit(ds, options, 5);
  ASSERT_TRUE(split.ok());
  std::set<int> seen_nodes;
  for (int v : split->train_nodes) EXPECT_TRUE(seen_nodes.insert(v).second);
  for (int v : split->val_nodes) EXPECT_TRUE(seen_nodes.insert(v).second);
  for (int v : split->test_nodes) EXPECT_TRUE(seen_nodes.insert(v).second);
  EXPECT_EQ(static_cast<int>(seen_nodes.size()), ds.num_nodes());
}

TEST(SplitsTest, TrainNodesOnlyFromSeenClasses) {
  Dataset ds = MakeTestDataset();
  SplitOptions options;
  options.labeled_per_class = 15;
  auto split = MakeOpenWorldSplit(ds, options, 6);
  ASSERT_TRUE(split.ok());
  for (int v : split->train_nodes) {
    EXPECT_LT(split->remapped_labels[static_cast<size_t>(v)],
              split->num_seen);
  }
  for (int v : split->val_nodes) {
    EXPECT_LT(split->remapped_labels[static_cast<size_t>(v)],
              split->num_seen);
  }
}

TEST(SplitsTest, PerClassBudgetsRespected) {
  Dataset ds = MakeTestDataset();
  SplitOptions options;
  options.labeled_per_class = 12;
  options.val_per_class = 7;
  auto split = MakeOpenWorldSplit(ds, options, 7);
  ASSERT_TRUE(split.ok());
  std::vector<int> train_counts(static_cast<size_t>(split->num_seen), 0);
  for (int v : split->train_nodes) {
    ++train_counts[static_cast<size_t>(
        split->remapped_labels[static_cast<size_t>(v)])];
  }
  for (int c : train_counts) EXPECT_EQ(c, 12);
  std::vector<int> val_counts(static_cast<size_t>(split->num_seen), 0);
  for (int v : split->val_nodes) {
    ++val_counts[static_cast<size_t>(
        split->remapped_labels[static_cast<size_t>(v)])];
  }
  for (int c : val_counts) EXPECT_EQ(c, 7);
}

TEST(SplitsTest, BudgetCappedForSmallClasses) {
  Dataset ds = MakeTestDataset(120, 3, 2);  // ~40 nodes per class
  SplitOptions options;
  options.labeled_per_class = 50;  // more than a third of any class
  options.val_per_class = 50;
  auto split = MakeOpenWorldSplit(ds, options, 8);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_FALSE(split->test_nodes.empty());
}

TEST(SplitsTest, DifferentSeedsGiveDifferentSplits) {
  Dataset ds = MakeTestDataset();
  auto a = MakeOpenWorldSplit(ds, SplitOptions{}, 1);
  auto b = MakeOpenWorldSplit(ds, SplitOptions{}, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->train_nodes != b->train_nodes ||
              a->seen_classes != b->seen_classes);
  auto a2 = MakeOpenWorldSplit(ds, SplitOptions{}, 1);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a->train_nodes, a2->train_nodes);
  EXPECT_EQ(a->seen_classes, a2->seen_classes);
}

TEST(SplitsTest, UnlabeledNodesIsValPlusTest) {
  Dataset ds = MakeTestDataset();
  auto split = MakeOpenWorldSplit(ds, SplitOptions{}, 9);
  ASSERT_TRUE(split.ok());
  auto unlabeled = split->UnlabeledNodes();
  EXPECT_EQ(unlabeled.size(),
            split->val_nodes.size() + split->test_nodes.size());
  EXPECT_TRUE(std::is_sorted(unlabeled.begin(), unlabeled.end()));
}

TEST(SplitsTest, InvalidOptionsRejected) {
  Dataset ds = MakeTestDataset();
  SplitOptions bad;
  bad.seen_class_fraction = 0.0;
  EXPECT_FALSE(MakeOpenWorldSplit(ds, bad, 1).ok());
  bad = SplitOptions{};
  bad.labeled_per_class = 0;
  EXPECT_FALSE(MakeOpenWorldSplit(ds, bad, 1).ok());
}

TEST(SplitsTest, ExtremeSeenFractionClamped) {
  Dataset ds = MakeTestDataset();
  SplitOptions options;
  options.seen_class_fraction = 0.01;  // rounds to 0 -> clamped to 1
  auto split = MakeOpenWorldSplit(ds, options, 10);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->num_seen, 1);
  EXPECT_EQ(split->num_novel, 5);
}

}  // namespace
}  // namespace openima::graph
