#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/assign/cluster_alignment.h"
#include "src/assign/hungarian.h"
#include "src/util/rng.h"

namespace openima::assign {
namespace {

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& row_to_col) {
  double total = 0.0;
  for (size_t i = 0; i < row_to_col.size(); ++i) {
    total += cost[i][static_cast<size_t>(row_to_col[i])];
  }
  return total;
}

/// Exhaustive minimum over all injective row->column assignments.
double BruteForceMinCost(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  const int m = static_cast<int>(cost[0].size());
  std::vector<int> cols(static_cast<size_t>(m));
  std::iota(cols.begin(), cols.end(), 0);
  double best = 1e300;
  // Permute columns; the first n entries form the assignment.
  std::sort(cols.begin(), cols.end());
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost[static_cast<size_t>(i)][static_cast<size_t>(cols[static_cast<size_t>(i)])];
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

TEST(HungarianTest, SimpleKnownCase) {
  // Classic 3x3 instance with optimal cost 5 (1 + 2 + 2).
  std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  auto result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, *result), 5.0);
}

TEST(HungarianTest, AssignmentIsInjective) {
  Rng rng(1);
  std::vector<std::vector<double>> cost(5, std::vector<double>(5));
  for (auto& row : cost) {
    for (auto& v : row) v = rng.Uniform();
  }
  auto result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  std::vector<int> seen;
  for (int c : *result) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 5);
    EXPECT_EQ(std::count(seen.begin(), seen.end(), c), 0);
    seen.push_back(c);
  }
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForceSquare) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.UniformInt(4));  // 2..5
  std::vector<std::vector<double>> cost(static_cast<size_t>(n),
                                        std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& v : row) v = rng.Uniform(-5.0, 5.0);
  }
  auto result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(AssignmentCost(cost, *result), BruteForceMinCost(cost), 1e-9);
}

TEST_P(HungarianRandomTest, MatchesBruteForceRectangular) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const int n = 2 + static_cast<int>(rng.UniformInt(3));  // 2..4
  const int m = n + 1 + static_cast<int>(rng.UniformInt(3));  // n+1..n+3
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(m)));
  for (auto& row : cost) {
    for (auto& v : row) v = rng.Uniform(0.0, 10.0);
  }
  auto result = MinCostAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(AssignmentCost(cost, *result), BruteForceMinCost(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomTest,
                         ::testing::Range(1, 21));

TEST(HungarianTest, MaxWeightIsNegatedMinCost) {
  std::vector<std::vector<double>> weight = {{10, 1}, {1, 10}};
  auto result = MaxWeightAssignment(weight);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0], 0);
  EXPECT_EQ((*result)[1], 1);
}

TEST(HungarianTest, RejectsInvalidInput) {
  EXPECT_FALSE(MinCostAssignment({}).ok());
  EXPECT_FALSE(MinCostAssignment({{1.0, 2.0}, {1.0}}).ok());  // ragged
  EXPECT_FALSE(MinCostAssignment({{1.0}, {2.0}}).ok());  // rows > cols
}

// ---------------------------------------------------------------------------
// Cluster-class alignment (Eq. 5)
// ---------------------------------------------------------------------------

TEST(AlignmentTest, PerfectClusteringFullyMatches) {
  // clusters:  0 0 1 1 2 2 ; labels: 1 1 0 0 -> classes {0,1}, cluster 2 novel
  std::vector<int> clusters = {0, 0, 1, 1};
  std::vector<int> labels = {1, 1, 0, 0};
  auto alignment = AlignClustersWithLabels(clusters, labels, 3, 2);
  ASSERT_TRUE(alignment.ok());
  EXPECT_EQ(alignment->num_matched, 4);
  EXPECT_EQ(alignment->cluster_to_class[0], 1);
  EXPECT_EQ(alignment->cluster_to_class[1], 0);
  EXPECT_EQ(alignment->cluster_to_class[2], -1);
}

TEST(AlignmentTest, MajorityWinsOnNoisyClusters) {
  std::vector<int> clusters = {0, 0, 0, 1, 1, 1, 1};
  std::vector<int> labels = {0, 0, 1, 1, 1, 1, 0};
  auto alignment = AlignClustersWithLabels(clusters, labels, 2, 2);
  ASSERT_TRUE(alignment.ok());
  EXPECT_EQ(alignment->cluster_to_class[0], 0);
  EXPECT_EQ(alignment->cluster_to_class[1], 1);
  EXPECT_EQ(alignment->num_matched, 5);
}

TEST(AlignmentTest, ApplyAlignmentAssignsFreshNovelIds) {
  ClusterAlignment alignment;
  alignment.cluster_to_class = {1, -1, 0, -1};
  std::vector<int> clusters = {0, 1, 2, 3, 1};
  auto preds = ApplyAlignment(clusters, alignment, 2);
  EXPECT_EQ(preds, (std::vector<int>{1, 2, 0, 3, 2}));
}

TEST(AlignmentTest, RejectsBadArguments) {
  EXPECT_FALSE(AlignClustersWithLabels({0}, {0, 1}, 2, 2).ok());
  EXPECT_FALSE(AlignClustersWithLabels({0, 1}, {0, 1}, 1, 2).ok());
  EXPECT_FALSE(AlignClustersWithLabels({0, 5}, {0, 1}, 2, 2).ok());
  EXPECT_FALSE(AlignClustersWithLabels({0, 1}, {0, 7}, 2, 2).ok());
}

TEST(AlignmentTest, MoreClustersThanClasses) {
  // 4 clusters, 2 classes: exactly two clusters stay unaligned.
  std::vector<int> clusters = {0, 1, 2, 3, 0, 1};
  std::vector<int> labels = {0, 1, 0, 1, 0, 1};
  auto alignment = AlignClustersWithLabels(clusters, labels, 4, 2);
  ASSERT_TRUE(alignment.ok());
  int unaligned = 0;
  for (int c : alignment->cluster_to_class) unaligned += c == -1;
  EXPECT_EQ(unaligned, 2);
}

}  // namespace
}  // namespace openima::assign
