#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/benchmarks.h"
#include "src/graph/dataset.h"
#include "src/graph/graph.h"
#include "src/graph/synthetic.h"

namespace openima::graph {
namespace {

// ---------------------------------------------------------------------------
// CSR graph
// ---------------------------------------------------------------------------

TEST(GraphTest, BuildsSymmetricCsr) {
  Graph g = Graph::FromUndirectedEdges(4, {{0, 1}, {1, 2}}, false);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_undirected_edges(), 2);
  EXPECT_EQ(g.num_directed_edges(), 4);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(3), 0);
  auto [begin, end] = g.Neighbors(1);
  std::vector<int> nb(begin, end);
  EXPECT_EQ(nb, (std::vector<int>{0, 2}));
}

TEST(GraphTest, DeduplicatesAndDropsSelfLoops) {
  Graph g = Graph::FromUndirectedEdges(
      3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}}, false);
  EXPECT_EQ(g.num_undirected_edges(), 1);
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(GraphTest, SelfLoopsAppendedWhenRequested) {
  Graph g = Graph::FromUndirectedEdges(3, {{0, 1}}, true);
  EXPECT_TRUE(g.has_self_loops());
  EXPECT_EQ(g.Degree(0), 2);  // neighbor 1 + self
  EXPECT_EQ(g.Degree(2), 1);  // self only
  auto [begin, end] = g.Neighbors(2);
  EXPECT_EQ(*begin, 2);
  EXPECT_EQ(end - begin, 1);
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g = Graph::FromUndirectedEdges(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}},
                                       true);
  auto [begin, end] = g.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(begin, end));
  EXPECT_EQ(end - begin, 5);
}

TEST(GraphBuilderTest, AccumulatesEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  EXPECT_EQ(builder.num_edges_added(), 2);
  Graph g = builder.Build(false);
  EXPECT_EQ(g.num_undirected_edges(), 2);
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(DatasetTest, ClassCounts) {
  Dataset ds;
  ds.num_classes = 3;
  ds.labels = {0, 1, 1, 2, 2, 2};
  auto counts = ds.ClassCounts();
  EXPECT_EQ(counts, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

TEST(SbmConfigTest, ValidationCatchesBadInputs) {
  SbmConfig c;
  c.num_nodes = 1;
  EXPECT_FALSE(ValidateSbmConfig(c).ok());
  c = SbmConfig{};
  c.num_classes = 1;
  EXPECT_FALSE(ValidateSbmConfig(c).ok());
  c = SbmConfig{};
  c.homophily = 1.5;
  EXPECT_FALSE(ValidateSbmConfig(c).ok());
  c = SbmConfig{};
  c.avg_degree = 0.0;
  EXPECT_FALSE(ValidateSbmConfig(c).ok());
  c = SbmConfig{};
  c.noise_spread = 1.0;
  EXPECT_FALSE(ValidateSbmConfig(c).ok());
  EXPECT_TRUE(ValidateSbmConfig(SbmConfig{}).ok());
}

SbmConfig SmallConfig() {
  SbmConfig c;
  c.num_nodes = 400;
  c.num_classes = 4;
  c.feature_dim = 16;
  c.avg_degree = 10.0;
  c.homophily = 0.8;
  return c;
}

TEST(SbmTest, BasicShapeAndLabelRange) {
  auto ds = GenerateSbm(SmallConfig(), 1, "test");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_nodes(), 400);
  EXPECT_EQ(ds->feature_dim(), 16);
  EXPECT_EQ(ds->num_classes, 4);
  EXPECT_EQ(ds->labels.size(), 400u);
  for (int c : ds->ClassCounts()) EXPECT_GE(c, 4);
}

TEST(SbmTest, DeterministicInSeed) {
  auto a = GenerateSbm(SmallConfig(), 7);
  auto b = GenerateSbm(SmallConfig(), 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_TRUE(a->features == b->features);
  EXPECT_EQ(a->graph.num_directed_edges(), b->graph.num_directed_edges());
  auto c = GenerateSbm(SmallConfig(), 8);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->labels, c->labels);
}

TEST(SbmTest, EdgeCountNearTarget) {
  auto ds = GenerateSbm(SmallConfig(), 2);
  ASSERT_TRUE(ds.ok());
  const double target = 400 * 10.0 / 2.0;
  EXPECT_GT(ds->graph.num_undirected_edges(), 0.75 * target);
  EXPECT_LE(ds->graph.num_undirected_edges(), 1.05 * target);
}

TEST(SbmTest, HomophilyIsRealized) {
  auto ds = GenerateSbm(SmallConfig(), 3);
  ASSERT_TRUE(ds.ok());
  int64_t same = 0, total = 0;
  for (int v = 0; v < ds->num_nodes(); ++v) {
    auto [begin, end] = ds->graph.Neighbors(v);
    for (const int* p = begin; p != end; ++p) {
      if (*p == v) continue;  // self-loop
      ++total;
      same += ds->labels[static_cast<size_t>(v)] ==
              ds->labels[static_cast<size_t>(*p)];
    }
  }
  const double measured = static_cast<double>(same) / total;
  // Configured 0.8 homophily plus random-pair same-class collisions.
  EXPECT_GT(measured, 0.70);
  EXPECT_LT(measured, 0.95);
}

TEST(SbmTest, FeaturesCarryClassSignal) {
  auto ds = GenerateSbm(SmallConfig(), 4);
  ASSERT_TRUE(ds.ok());
  // Mean within-class feature distance must be below cross-class distance.
  const int d = ds->feature_dim();
  std::vector<la::Matrix> means(4, la::Matrix(1, d));
  std::vector<int> counts(4, 0);
  for (int v = 0; v < ds->num_nodes(); ++v) {
    const int c = ds->labels[static_cast<size_t>(v)];
    ++counts[static_cast<size_t>(c)];
    for (int j = 0; j < d; ++j) {
      means[static_cast<size_t>(c)](0, j) += ds->features(v, j);
    }
  }
  for (int c = 0; c < 4; ++c) {
    means[static_cast<size_t>(c)] *= 1.0f / counts[static_cast<size_t>(c)];
  }
  double min_center_dist = 1e30;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = means[static_cast<size_t>(a)](0, j) -
                            means[static_cast<size_t>(b)](0, j);
        dist += diff * diff;
      }
      min_center_dist = std::min(min_center_dist, dist);
    }
  }
  EXPECT_GT(min_center_dist, 0.1) << "class centers must be separated";
}

TEST(SbmTest, ClassImbalanceSkewsSizes) {
  SbmConfig c = SmallConfig();
  c.class_imbalance = 1.0;
  auto ds = GenerateSbm(c, 5);
  ASSERT_TRUE(ds.ok());
  auto counts = ds->ClassCounts();
  EXPECT_GT(counts[0], counts[3]) << "Zipf head must be largest";
}

TEST(SbmTest, TooManyClassesRejected) {
  SbmConfig c;
  c.num_nodes = 10;
  c.num_classes = 5;  // 4 * 5 = 20 > 10 minimum members
  EXPECT_FALSE(GenerateSbm(c, 1).ok());
}

// ---------------------------------------------------------------------------
// Benchmark specs
// ---------------------------------------------------------------------------

TEST(BenchmarksTest, AllSevenPresent) {
  const auto& specs = AllBenchmarks();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "citeseer");
  EXPECT_EQ(specs[6].name, "ogbn_products");
  EXPECT_EQ(specs[5].labeled_per_class, 500);
  EXPECT_TRUE(specs[6].large_scale);
  EXPECT_FALSE(specs[3].large_scale);
}

TEST(BenchmarksTest, LookupByName) {
  auto spec = GetBenchmark("coauthor_cs");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_classes, 15);
  EXPECT_EQ(spec->paper_nodes, 18333);
  EXPECT_FALSE(GetBenchmark("nope").ok());
}

TEST(BenchmarksTest, ScalingRespectsFloorsAndCaps) {
  auto spec = *GetBenchmark("citeseer");
  SbmConfig cfg = MakeSbmConfig(spec, 0.1, 32);
  EXPECT_GE(cfg.num_nodes, 60 * 6);
  EXPECT_LE(cfg.num_nodes, spec.paper_nodes);
  EXPECT_EQ(cfg.feature_dim, 32);
  EXPECT_LE(cfg.avg_degree, 16.0);

  SbmConfig full = MakeSbmConfig(spec, 1.0, 100000);
  EXPECT_EQ(full.num_nodes, spec.paper_nodes);
  EXPECT_EQ(full.feature_dim, spec.paper_features);
}

TEST(BenchmarksTest, MakeDatasetProducesScaledGraph) {
  auto spec = *GetBenchmark("citeseer");
  auto ds = MakeDataset(spec, 0.12, 24, 42);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->name, "citeseer");
  EXPECT_EQ(ds->num_classes, 6);
  EXPECT_EQ(ds->feature_dim(), 24);
  EXPECT_GE(ds->num_nodes(), 360);
}

}  // namespace
}  // namespace openima::graph
