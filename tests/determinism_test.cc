#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/gmm.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/silhouette.h"
#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/matrix.h"
#include "src/la/matrix_ops.h"
#include "src/metrics/clustering_accuracy.h"
#include "src/util/rng.h"

/// The execution layer promises bit-identical results for any thread
/// count: disjoint-write kernels under ParallelFor, and fixed-chunk
/// reductions (combined in chunk order) everywhere a float sum crosses
/// threads. These tests compare full runs pinned to Context(1) vs
/// Context(4) with EXPECT_EQ — exact equality, no tolerances.
namespace openima {
namespace {

la::Matrix RandomPoints(int n, int d, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(n, d);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

TEST(ClusterDeterminismTest, KMeansIsThreadCountInvariant) {
  const la::Matrix points = RandomPoints(300, 8, 11);
  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx) {
    cluster::KMeansOptions options;
    options.num_clusters = 5;
    options.num_init = 2;
    options.exec = ctx;
    Rng rng(99);  // identical rng stream for both runs
    auto result = cluster::KMeans(points, options, &rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  const auto r1 = run(&c1);
  const auto r4 = run(&c4);
  EXPECT_TRUE(r1.centers == r4.centers);
  EXPECT_EQ(r1.assignments, r4.assignments);
  EXPECT_EQ(r1.inertia, r4.inertia);
  EXPECT_EQ(r1.iterations, r4.iterations);
}

TEST(ClusterDeterminismTest, MiniBatchKMeansIsThreadCountInvariant) {
  const la::Matrix points = RandomPoints(400, 6, 12);
  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx) {
    cluster::MiniBatchKMeansOptions options;
    options.num_clusters = 4;
    options.batch_size = 64;
    options.max_iterations = 20;
    options.exec = ctx;
    Rng rng(7);
    auto result = cluster::MiniBatchKMeans(points, options, &rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  const auto r1 = run(&c1);
  const auto r4 = run(&c4);
  EXPECT_TRUE(r1.centers == r4.centers);
  EXPECT_EQ(r1.assignments, r4.assignments);
  EXPECT_EQ(r1.inertia, r4.inertia);
}

TEST(ClusterDeterminismTest, GmmIsThreadCountInvariant) {
  const la::Matrix points = RandomPoints(250, 5, 13);
  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx) {
    cluster::GmmOptions options;
    options.num_components = 3;
    options.exec = ctx;
    Rng rng(21);
    auto result = cluster::FitGmm(points, options, &rng);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  const auto r1 = run(&c1);
  const auto r4 = run(&c4);
  EXPECT_TRUE(r1.means == r4.means);
  EXPECT_TRUE(r1.variances == r4.variances);
  EXPECT_EQ(r1.weights, r4.weights);
  EXPECT_EQ(r1.assignments, r4.assignments);
  EXPECT_EQ(r1.mean_log_likelihood, r4.mean_log_likelihood);
  EXPECT_EQ(r1.iterations, r4.iterations);
}

TEST(ClusterDeterminismTest, SilhouetteIsThreadCountInvariant) {
  const la::Matrix points = RandomPoints(350, 4, 14);
  std::vector<int> assignments(350);
  for (int i = 0; i < 350; ++i) assignments[static_cast<size_t>(i)] = i % 3;
  exec::Context c1(1);
  exec::Context c4(4);
  auto run = [&](const exec::Context* ctx) {
    cluster::SilhouetteOptions options;
    options.exec = ctx;
    Rng rng(5);
    auto sc = cluster::SilhouetteCoefficient(points, assignments, options,
                                             &rng);
    EXPECT_TRUE(sc.ok());
    return sc.value();
  };
  EXPECT_EQ(run(&c1), run(&c4));
}

/// End-to-end: the full OpenIMA pipeline (GAT encoder training with
/// cross-entropy + supervised-contrastive losses, variance-reduced
/// pseudo-labels from spherical K-Means, prediction) must produce the
/// same bits when pinned to one or four threads.
TEST(PipelineDeterminismTest, OpenImaIsThreadCountInvariant) {
  graph::SbmConfig sbm;
  sbm.num_nodes = 160;
  sbm.num_classes = 4;
  sbm.feature_dim = 12;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 3, "determinism");
  ASSERT_TRUE(dataset.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(*dataset, so, 4);
  ASSERT_TRUE(split.ok());

  exec::Context c1(1);
  exec::Context c4(4);
  struct RunOutput {
    la::Matrix embeddings;
    std::vector<int> predictions;
    std::vector<double> epoch_losses;
    double accuracy = 0.0;
  };
  auto run = [&](const exec::Context* ctx) {
    core::OpenImaConfig config;
    config.encoder.in_dim = dataset->feature_dim();
    config.encoder.hidden_dim = 16;
    config.encoder.embedding_dim = 16;
    config.encoder.num_heads = 2;
    config.num_seen = split->num_seen;
    config.num_novel = split->num_novel;
    config.epochs = 5;
    config.batch_size = 256;
    config.lr = 5e-3f;
    config.exec = ctx;
    core::OpenImaModel model(config, dataset->feature_dim(), 99);
    EXPECT_TRUE(model.Train(*dataset, *split).ok());
    RunOutput out;
    out.embeddings = model.Embeddings(*dataset);
    auto preds = model.Predict(*dataset, *split);
    EXPECT_TRUE(preds.ok());
    out.predictions = std::move(preds).value();
    out.epoch_losses = model.train_stats().epoch_losses;
    std::vector<int> pred_test, label_test;
    for (int v : split->test_nodes) {
      pred_test.push_back(out.predictions[static_cast<size_t>(v)]);
      label_test.push_back(split->remapped_labels[static_cast<size_t>(v)]);
    }
    auto acc = metrics::EvaluateOpenWorld(pred_test, label_test,
                                          split->num_seen,
                                          split->num_total_classes());
    EXPECT_TRUE(acc.ok());
    out.accuracy = acc->all;
    return out;
  };

  const RunOutput r1 = run(&c1);
  const RunOutput r4 = run(&c4);
  EXPECT_TRUE(r1.embeddings == r4.embeddings)
      << "embeddings differ across thread counts";
  EXPECT_EQ(r1.predictions, r4.predictions);
  EXPECT_EQ(r1.epoch_losses, r4.epoch_losses);
  EXPECT_EQ(r1.accuracy, r4.accuracy);
}

/// The memory arena is a pure storage optimization: where a buffer lives
/// must never change what a kernel computes. A full OpenIMA run with the
/// pool/tape enabled is bit-identical to the plain-heap run.
TEST(PipelineDeterminismTest, OpenImaIsMemoryPoolInvariant) {
  graph::SbmConfig sbm;
  sbm.num_nodes = 160;
  sbm.num_classes = 4;
  sbm.feature_dim = 12;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 3, "determinism");
  ASSERT_TRUE(dataset.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(*dataset, so, 4);
  ASSERT_TRUE(split.ok());

  struct RunOutput {
    la::Matrix embeddings;
    std::vector<int> predictions;
    std::vector<double> epoch_losses;
  };
  auto run = [&](bool pooled) {
    core::OpenImaConfig config;
    config.encoder.in_dim = dataset->feature_dim();
    config.encoder.hidden_dim = 16;
    config.encoder.embedding_dim = 16;
    config.encoder.num_heads = 2;
    config.num_seen = split->num_seen;
    config.num_novel = split->num_novel;
    config.epochs = 5;
    config.batch_size = 256;
    config.lr = 5e-3f;
    config.use_memory_pool = pooled;
    core::OpenImaModel model(config, dataset->feature_dim(), 99);
    EXPECT_TRUE(model.Train(*dataset, *split).ok());
    RunOutput out;
    out.embeddings = model.Embeddings(*dataset);
    auto preds = model.Predict(*dataset, *split);
    EXPECT_TRUE(preds.ok());
    out.predictions = std::move(preds).value();
    out.epoch_losses = model.train_stats().epoch_losses;
    return out;
  };

  const RunOutput pooled = run(true);
  const RunOutput heap = run(false);
  EXPECT_TRUE(pooled.embeddings == heap.embeddings)
      << "embeddings differ between pooled and plain-heap training";
  EXPECT_EQ(pooled.predictions, heap.predictions);
  EXPECT_EQ(pooled.epoch_losses, heap.epoch_losses);
}

}  // namespace
}  // namespace openima
