#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/core/openima.h"
#include "src/exec/context.h"
#include "src/graph/splits.h"
#include "src/graph/synthetic.h"
#include "src/la/matrix.h"
#include "src/nn/adam.h"
#include "src/obs/obs.h"
#include "src/util/status.h"

/// Tests for the telemetry layer (DESIGN.md §2.5): EpochRecord / TelemetryLog
/// serialization, the determinism contract of the emitted JSONL, the numeric
/// watchdog's policies, and the run_diff comparison engine behind the
/// tools/run_diff regression gate.
namespace openima {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// ---------------------------------------------------------------------------
// EpochRecord / TelemetryLog
// ---------------------------------------------------------------------------

obs::EpochRecord FullRecord() {
  obs::EpochRecord r;
  r.trainer = "OpenIMA";
  r.epoch = 3;
  r.loss = 12.5;
  r.has_components = true;
  r.loss_ce = 1.25;
  r.loss_bpcl_emb = 5.5;
  r.loss_bpcl_logit = 5.75;
  r.loss_pairwise = 0.0;
  r.grad_norm = 2.25;
  r.param_grad_norms = {1.5, 0.75, 1.25};
  r.watchdog_events = 2;
  r.pseudo_labels = 120;
  r.pseudo_precision = 0.875;
  r.alignment_churn = 0.25;
  r.refreshed = true;
  r.has_quality = true;
  r.val_acc = 0.75;
  r.val_nmi = 0.5;
  r.acc_all = 0.625;
  r.acc_seen = 0.6875;
  r.acc_novel = 0.5625;
  return r;
}

TEST(EpochRecordTest, JsonRoundTripPreservesEveryField) {
  const obs::EpochRecord r = FullRecord();
  auto back = obs::EpochRecord::FromJson(r.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trainer, r.trainer);
  EXPECT_EQ(back->epoch, r.epoch);
  EXPECT_EQ(back->loss, r.loss);
  EXPECT_TRUE(back->has_components);
  EXPECT_EQ(back->loss_ce, r.loss_ce);
  EXPECT_EQ(back->loss_bpcl_emb, r.loss_bpcl_emb);
  EXPECT_EQ(back->loss_bpcl_logit, r.loss_bpcl_logit);
  EXPECT_EQ(back->loss_pairwise, r.loss_pairwise);
  EXPECT_EQ(back->grad_norm, r.grad_norm);
  EXPECT_EQ(back->param_grad_norms, r.param_grad_norms);
  EXPECT_EQ(back->watchdog_events, r.watchdog_events);
  EXPECT_EQ(back->pseudo_labels, r.pseudo_labels);
  EXPECT_EQ(back->pseudo_precision, r.pseudo_precision);
  EXPECT_EQ(back->alignment_churn, r.alignment_churn);
  EXPECT_TRUE(back->refreshed);
  EXPECT_TRUE(back->has_quality);
  EXPECT_EQ(back->val_acc, r.val_acc);
  EXPECT_EQ(back->val_nmi, r.val_nmi);
  EXPECT_EQ(back->acc_all, r.acc_all);
  EXPECT_EQ(back->acc_seen, r.acc_seen);
  EXPECT_EQ(back->acc_novel, r.acc_novel);
}

TEST(EpochRecordTest, OptionalGroupsAreOmittedAtSentinels) {
  obs::EpochRecord r;
  r.trainer = "ORCA";
  r.epoch = 0;
  r.loss = 1.0;
  const obs::json::Value v = r.ToJson();
  EXPECT_EQ(v.Find("loss_ce"), nullptr);
  EXPECT_EQ(v.Find("pseudo_labels"), nullptr);
  EXPECT_EQ(v.Find("val_acc"), nullptr);
  auto back = obs::EpochRecord::FromJson(v);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->has_components);
  EXPECT_FALSE(back->has_quality);
  EXPECT_EQ(back->pseudo_labels, -1);
}

TEST(TelemetryLogTest, AppendsOneJsonLinePerRecord) {
  const std::string path = TempPath("telemetry_log.jsonl");
  obs::TelemetryLog log;
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_TRUE(log.is_open());
  obs::EpochRecord r = FullRecord();
  ASSERT_TRUE(log.Append(r).ok());
  r.epoch = 4;
  ASSERT_TRUE(log.Append(r).ok());
  EXPECT_EQ(log.records_written(), 2);
  ASSERT_TRUE(log.Close().ok());

  auto lines = obs::ReadJsonl(path);
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();
  ASSERT_EQ(lines->size(), 2u);
  for (const auto& line : *lines) {
    auto rec = obs::EpochRecord::FromJson(line);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->trainer, "OpenIMA");
  }
}

TEST(TelemetryLogTest, ReadJsonlRejectsMalformedLines) {
  const std::string path = TempPath("telemetry_bad.jsonl");
  WriteFileBytes(path, "{\"trainer\":\"A\",\"epoch\":0,\"loss\":1}\nnot json\n");
  auto lines = obs::ReadJsonl(path);
  EXPECT_FALSE(lines.ok());
}

TEST(GradNormAccumulatorTest, AccumulatesGlobalAndPerParamNorms) {
  obs::GradNormAccumulator acc;
  const float a[2] = {3.0f, 4.0f};  // ||a|| = 5
  const float b[1] = {12.0f};       // ||b|| = 12
  acc.Add(a, 2);
  acc.Add(b, 1);
  ASSERT_EQ(acc.per_param().size(), 2u);
  EXPECT_DOUBLE_EQ(acc.per_param()[0], 5.0);
  EXPECT_DOUBLE_EQ(acc.per_param()[1], 12.0);
  EXPECT_DOUBLE_EQ(acc.global(), 13.0);  // sqrt(25 + 144)
}

// ---------------------------------------------------------------------------
// Determinism contract: the JSONL a training run emits is bit-identical
// across thread counts and pooled-vs-heap storage, and enabling telemetry
// does not change the training computation itself. Only meaningful when the
// layer is compiled in (under OPENIMA_OBS=OFF the sink cannot start).
// ---------------------------------------------------------------------------

#if OPENIMA_OBS_ENABLED

struct TinyProblem {
  graph::Dataset dataset;
  graph::OpenWorldSplit split;
};

TinyProblem MakeTinyProblem() {
  graph::SbmConfig sbm;
  sbm.num_nodes = 160;
  sbm.num_classes = 4;
  sbm.feature_dim = 12;
  sbm.avg_degree = 8.0;
  sbm.homophily = 0.85;
  sbm.feature_noise = 1.0;
  auto dataset = graph::GenerateSbm(sbm, 3, "telemetry");
  EXPECT_TRUE(dataset.ok());
  graph::SplitOptions so;
  so.labeled_per_class = 10;
  so.val_per_class = 5;
  auto split = graph::MakeOpenWorldSplit(*dataset, so, 4);
  EXPECT_TRUE(split.ok());
  return TinyProblem{std::move(*dataset), std::move(*split)};
}

core::OpenImaConfig TinyConfig(const TinyProblem& p,
                               const exec::Context* ctx = nullptr,
                               bool pooled = true) {
  core::OpenImaConfig config;
  config.encoder.in_dim = p.dataset.feature_dim();
  config.encoder.hidden_dim = 16;
  config.encoder.embedding_dim = 16;
  config.encoder.num_heads = 2;
  config.num_seen = p.split.num_seen;
  config.num_novel = p.split.num_novel;
  config.epochs = 4;
  config.batch_size = 256;
  config.lr = 5e-3f;
  config.exec = ctx;
  config.use_memory_pool = pooled;
  return config;
}

/// Trains the tiny problem with the global telemetry sink pointed at `path`
/// and returns the model's epoch losses.
std::vector<double> TrainWithTelemetry(const TinyProblem& p,
                                       const std::string& path,
                                       const exec::Context* ctx,
                                       bool pooled) {
  EXPECT_TRUE(obs::StartTelemetry(path).ok());
  core::OpenImaModel model(TinyConfig(p, ctx, pooled), p.dataset.feature_dim(),
                           99);
  EXPECT_TRUE(model.Train(p.dataset, p.split).ok());
  EXPECT_TRUE(obs::StopTelemetry().ok());
  return model.train_stats().epoch_losses;
}

TEST(TelemetryDeterminismTest, JsonlIsThreadCountInvariant) {
  const TinyProblem p = MakeTinyProblem();
  exec::Context c1(1);
  exec::Context c4(4);
  const std::string path1 = TempPath("telemetry_t1.jsonl");
  const std::string path4 = TempPath("telemetry_t4.jsonl");
  TrainWithTelemetry(p, path1, &c1, /*pooled=*/true);
  TrainWithTelemetry(p, path4, &c4, /*pooled=*/true);
  const std::string bytes1 = ReadFileBytes(path1);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, ReadFileBytes(path4))
      << "telemetry JSONL differs across thread counts";
}

TEST(TelemetryDeterminismTest, JsonlIsMemoryPoolInvariant) {
  const TinyProblem p = MakeTinyProblem();
  const std::string pooled_path = TempPath("telemetry_pooled.jsonl");
  const std::string heap_path = TempPath("telemetry_heap.jsonl");
  TrainWithTelemetry(p, pooled_path, nullptr, /*pooled=*/true);
  TrainWithTelemetry(p, heap_path, nullptr, /*pooled=*/false);
  const std::string pooled_bytes = ReadFileBytes(pooled_path);
  EXPECT_FALSE(pooled_bytes.empty());
  EXPECT_EQ(pooled_bytes, ReadFileBytes(heap_path))
      << "telemetry JSONL differs between pooled and heap training";
}

TEST(TelemetryDeterminismTest, RecordingDoesNotChangeTraining) {
  const TinyProblem p = MakeTinyProblem();
  // Telemetry off: plain training run.
  core::OpenImaModel off(TinyConfig(p), p.dataset.feature_dim(), 99);
  ASSERT_TRUE(off.Train(p.dataset, p.split).ok());
  // Telemetry on: same seed, sink active.
  const std::vector<double> on_losses =
      TrainWithTelemetry(p, TempPath("telemetry_parity.jsonl"), nullptr,
                         /*pooled=*/true);
  EXPECT_EQ(off.train_stats().epoch_losses, on_losses)
      << "enabling telemetry changed the training computation";
}

TEST(TelemetryDeterminismTest, EmitsOneCompleteRecordPerEpoch) {
  const TinyProblem p = MakeTinyProblem();
  const std::string path = TempPath("telemetry_schema.jsonl");
  TrainWithTelemetry(p, path, nullptr, /*pooled=*/true);
  auto lines = obs::ReadJsonl(path);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 4u);  // config.epochs
  bool saw_refresh = false;
  for (size_t i = 0; i < lines->size(); ++i) {
    auto rec = obs::EpochRecord::FromJson((*lines)[i]);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->trainer, "OpenIMA");
    EXPECT_EQ(rec->epoch, static_cast<int>(i));
    EXPECT_TRUE(rec->has_components);
    EXPECT_GE(rec->grad_norm, 0.0);
    EXPECT_FALSE(rec->param_grad_norms.empty());
    EXPECT_TRUE(rec->has_quality);
    EXPECT_GE(rec->val_nmi, 0.0);
    if (rec->refreshed) {
      saw_refresh = true;
      EXPECT_GE(rec->pseudo_labels, 0);
    }
  }
  EXPECT_TRUE(saw_refresh) << "no pseudo-label refresh epoch was recorded";
}

TEST(TelemetryGlobalSinkTest, DoubleStartFailsAndLabelSticks) {
  const std::string path = TempPath("telemetry_global.jsonl");
  ASSERT_TRUE(obs::StartTelemetry(path).ok());
  EXPECT_TRUE(obs::TelemetryEnabled());
  EXPECT_FALSE(obs::StartTelemetry(path).ok());
  obs::SetTelemetryRunLabel("cora/OpenIMA/seed0");
  obs::EpochRecord r;
  r.trainer = "OpenIMA";
  r.epoch = 0;
  r.loss = 1.0;
  ASSERT_TRUE(obs::AppendTelemetry(r).ok());
  obs::SetTelemetryRunLabel("");
  ASSERT_TRUE(obs::StopTelemetry().ok());
  EXPECT_FALSE(obs::TelemetryEnabled());
  auto lines = obs::ReadJsonl(path);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 1u);
  const obs::json::Value* label = (*lines)[0].Find("run");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->AsString(), "cora/OpenIMA/seed0");
}

// ---------------------------------------------------------------------------
// Numeric-health watchdog: NaN/Inf injection under each policy.
// ---------------------------------------------------------------------------

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Watchdog::ResetForTest(); }
  void TearDown() override { obs::Watchdog::ResetForTest(); }

  static obs::WatchdogOptions Options(obs::WatchdogPolicy policy,
                                      double max_norm = 1e8) {
    obs::WatchdogOptions o;
    o.policy = policy;
    o.max_grad_norm = max_norm;
    return o;
  }
};

TEST_F(WatchdogTest, OffByDefaultAndSkipsScans) {
  EXPECT_FALSE(obs::Watchdog::active());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(obs::Watchdog::CheckTensor("test.off", &nan, 1), 0);
  EXPECT_EQ(obs::Watchdog::events(), 0);
  EXPECT_TRUE(obs::Watchdog::ConsumeStatus().ok());
}

TEST_F(WatchdogTest, RecordCountsNanAndInfElements) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kRecord));
  ASSERT_TRUE(obs::Watchdog::active());
  const float bad[4] = {1.0f, std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity(), 2.0f};
  EXPECT_EQ(obs::Watchdog::CheckTensor("test.record", bad, 4), 2);
  EXPECT_EQ(obs::Watchdog::events(), 2);
  EXPECT_FALSE(obs::Watchdog::tripped());
  EXPECT_TRUE(obs::Watchdog::ConsumeStatus().ok());
}

TEST_F(WatchdogTest, WarnRecordsWithoutTripping) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kWarn));
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(obs::Watchdog::CheckTensor("test.warn", &inf, 1), 1);
  EXPECT_EQ(obs::Watchdog::events(), 1);
  EXPECT_FALSE(obs::Watchdog::tripped());
  EXPECT_TRUE(obs::Watchdog::ConsumeStatus().ok());
}

TEST_F(WatchdogTest, AbortTripsOnNanAndSurfacesStatus) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kAbort));
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(obs::Watchdog::CheckTensor("test.abort", &nan, 1), 1);
  EXPECT_TRUE(obs::Watchdog::tripped());
  const Status s = obs::Watchdog::ConsumeStatus();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("test.abort"), std::string::npos);
  // The trip is sticky until reconfigured.
  EXPECT_FALSE(obs::Watchdog::ConsumeStatus().ok());
  obs::Watchdog::ResetForTest();
  EXPECT_TRUE(obs::Watchdog::ConsumeStatus().ok());
}

TEST_F(WatchdogTest, NormExplosionCountsAndTrips) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kRecord,
                                   /*max_norm=*/10.0));
  obs::Watchdog::CheckNorm("test.norm", 5.0);
  EXPECT_EQ(obs::Watchdog::events(), 0);
  obs::Watchdog::CheckNorm("test.norm", 100.0);
  EXPECT_EQ(obs::Watchdog::events(), 1);
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kAbort,
                                   /*max_norm=*/10.0));
  obs::Watchdog::CheckNorm("test.norm",
                           std::numeric_limits<double>::infinity());
  EXPECT_TRUE(obs::Watchdog::tripped());
}

TEST_F(WatchdogTest, BackwardScansLossAndLeafGradients) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kRecord));
  la::Matrix value(2, 2);
  value.Fill(1.0f);
  value(0, 1) = std::numeric_limits<float>::quiet_NaN();
  autograd::Variable w = autograd::Variable::Leaf(std::move(value), true);
  autograd::ops::SumAll(w).Backward();
  // The NaN parameter poisons the loss value; the scan sees it.
  EXPECT_GE(obs::Watchdog::events(), 1);
}

TEST_F(WatchdogTest, AdamStepAbortsOnPoisonedGradient) {
  obs::Watchdog::Configure(Options(obs::WatchdogPolicy::kAbort));
  la::Matrix value(1, 2);
  value.Fill(0.5f);
  autograd::Variable p = autograd::Variable::Leaf(std::move(value), true);
  p.ZeroGrad();
  p.node()->grad(0, 0) = std::numeric_limits<float>::quiet_NaN();
  nn::Adam optimizer({p}, nn::AdamOptions{});
  optimizer.Step();
  const Status s = obs::Watchdog::ConsumeStatus();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("adam.grad"), std::string::npos);
}

TEST_F(WatchdogTest, ParsePolicyNames) {
  auto p = obs::ParseWatchdogPolicy("abort");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, obs::WatchdogPolicy::kAbort);
  EXPECT_STREQ(obs::WatchdogPolicyName(*p), "abort");
  EXPECT_FALSE(obs::ParseWatchdogPolicy("loudly").ok());
}

#endif  // OPENIMA_OBS_ENABLED

// ---------------------------------------------------------------------------
// run_diff: glob matching, tolerance rules, artifact diff + validation.
// Available in OPENIMA_OBS=OFF builds too.
// ---------------------------------------------------------------------------

TEST(RunDiffPathTest, GlobComponentsMatch) {
  EXPECT_TRUE(obs::PathMatches("records/3/loss", "records/3/loss"));
  EXPECT_TRUE(obs::PathMatches("records/*/loss", "records/3/loss"));
  EXPECT_FALSE(obs::PathMatches("records/*/loss", "records/3/val_acc"));
  EXPECT_TRUE(obs::PathMatches("runs/*/*_ms", "runs/0/epoch_ms"));
  EXPECT_FALSE(obs::PathMatches("runs/*/*_ms", "runs/0/final/loss"));
  EXPECT_TRUE(obs::PathMatches("run/**", "run/host/compiler"));
  EXPECT_TRUE(obs::PathMatches("run/**", "run"));
  EXPECT_FALSE(obs::PathMatches("run/**", "runs/0"));
  // A bare '*' is one component, not a remainder.
  EXPECT_FALSE(obs::PathMatches("records/*", "records/3/loss"));
}

obs::json::Value ParseJson(const std::string& text) {
  auto v = obs::json::Value::Parse(text);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return std::move(*v);
}

TEST(RunDiffTest, IdenticalDocumentsPass) {
  const obs::json::Value doc =
      ParseJson("{\"a\": 1.5, \"b\": [1, 2, 3], \"c\": {\"d\": \"x\"}}");
  const obs::DiffResult result = obs::DiffJson(doc, doc, obs::DiffOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.values_compared, 0);
}

TEST(RunDiffTest, PerturbedLeafFailsExactComparison) {
  const obs::json::Value lhs = ParseJson("{\"a\": 1.0, \"b\": 2.0}");
  const obs::json::Value rhs = ParseJson("{\"a\": 1.0, \"b\": 2.0000001}");
  const obs::DiffResult result = obs::DiffJson(lhs, rhs, obs::DiffOptions{});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.mismatches.size(), 1u);
  EXPECT_EQ(result.mismatches[0].path, "b");
}

TEST(RunDiffTest, ToleranceRulesGateMismatches) {
  const obs::json::Value lhs = ParseJson("{\"a\": 100.0, \"t\": 5.0}");
  const obs::json::Value rhs = ParseJson("{\"a\": 101.0, \"t\": 50.0}");
  obs::DiffOptions options;
  options.rules = {{"a", obs::RuleKind::kRel, 0.02},
                   {"t", obs::RuleKind::kIgnore, 0.0}};
  EXPECT_TRUE(obs::DiffJson(lhs, rhs, options).ok());
  options.rules[0].tolerance = 0.001;  // 1% drift no longer allowed
  EXPECT_FALSE(obs::DiffJson(lhs, rhs, options).ok());
}

TEST(RunDiffTest, MissingAndExtraKeysAreMismatches) {
  const obs::json::Value lhs = ParseJson("{\"a\": 1, \"only_lhs\": 2}");
  const obs::json::Value rhs = ParseJson("{\"a\": 1, \"only_rhs\": 3}");
  const obs::DiffResult result = obs::DiffJson(lhs, rhs, obs::DiffOptions{});
  EXPECT_EQ(result.total_mismatches, 2);
}

TEST(RunDiffTest, LoadToleranceFileKeepsOrder) {
  const std::string path = TempPath("tolerances.json");
  WriteFileBytes(path,
                 "{\"rules\": ["
                 "{\"path\": \"records/*/loss\", \"rel\": 0.05},"
                 "{\"path\": \"run/**\", \"ignore\": true},"
                 "{\"path\": \"runs/*/final/loss\", \"abs\": 1e-9}]}");
  auto rules = obs::LoadToleranceFile(path);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 3u);
  EXPECT_EQ((*rules)[0].pattern, "records/*/loss");
  EXPECT_EQ((*rules)[0].kind, obs::RuleKind::kRel);
  EXPECT_EQ((*rules)[1].kind, obs::RuleKind::kIgnore);
  EXPECT_EQ((*rules)[2].kind, obs::RuleKind::kAbs);
  EXPECT_FALSE(
      obs::LoadToleranceFile(TempPath("missing_tolerances.json")).ok());
}

const char kTelemetryLine[] =
    "{\"trainer\":\"OpenIMA\",\"epoch\":0,\"loss\":12.5,"
    "\"grad_norm\":2.0,\"watchdog_events\":0}\n";

TEST(RunDiffArtifactTest, DetectsAndDiffsTelemetryJsonl) {
  const std::string lhs = TempPath("artifact_lhs.jsonl");
  const std::string rhs = TempPath("artifact_rhs.jsonl");
  WriteFileBytes(lhs, kTelemetryLine);
  WriteFileBytes(rhs, kTelemetryLine);

  obs::ArtifactType type = obs::ArtifactType::kUnknown;
  auto doc = obs::LoadArtifact(lhs, &type);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(type, obs::ArtifactType::kTelemetryJsonl);
  ASSERT_NE(doc->Find("records"), nullptr);

  auto same = obs::DiffArtifacts(lhs, rhs, obs::DiffOptions{});
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->ok());

  std::string perturbed(kTelemetryLine);
  perturbed.replace(perturbed.find("12.5"), 4, "12.6");
  WriteFileBytes(rhs, perturbed);
  auto diff = obs::DiffArtifacts(lhs, rhs, obs::DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->ok());
  ASSERT_FALSE(diff->mismatches.empty());
  EXPECT_EQ(diff->mismatches[0].path, "records/0/loss");
}

TEST(RunDiffArtifactTest, BenchTrainDefaultsIgnoreTimingFields) {
  const char* lhs_text =
      "{\"schema\": \"openima-bench-train\","
      " \"run\": {\"host\": \"a\"},"
      " \"runs\": [{\"name\": \"quickstart/openima\", \"epoch_ms\": 10.0,"
      "             \"final\": {\"loss\": 1.5}}]}";
  std::string rhs_text(lhs_text);
  rhs_text.replace(rhs_text.find("10.0"), 4, "99.0");
  rhs_text.replace(rhs_text.find("\"a\""), 3, "\"b\"");
  const std::string lhs = TempPath("bench_lhs.json");
  const std::string rhs = TempPath("bench_rhs.json");
  WriteFileBytes(lhs, lhs_text);
  WriteFileBytes(rhs, rhs_text);
  // Timing + host metadata differ, but the default rules ignore both; the
  // gated "final" payload is identical.
  auto result = obs::DiffArtifacts(lhs, rhs, obs::DiffOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());

  rhs_text.replace(rhs_text.find("1.5"), 3, "0.5");
  WriteFileBytes(rhs, rhs_text);
  result = obs::DiffArtifacts(lhs, rhs, obs::DiffOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
}

TEST(RunDiffArtifactTest, MismatchedTypesRefuseToDiff) {
  const std::string jsonl = TempPath("type_lhs.jsonl");
  const std::string bench = TempPath("type_rhs.json");
  WriteFileBytes(jsonl, kTelemetryLine);
  WriteFileBytes(bench,
                 "{\"schema\": \"openima-bench-train\", \"runs\": "
                 "[{\"name\": \"x\", \"final\": {}}]}");
  EXPECT_FALSE(obs::DiffArtifacts(jsonl, bench, obs::DiffOptions{}).ok());
}

TEST(RunDiffArtifactTest, ValidateAcceptsGoodAndRejectsBad) {
  const std::string good = TempPath("validate_good.jsonl");
  WriteFileBytes(good, kTelemetryLine);
  EXPECT_TRUE(obs::ValidateArtifact(good).ok());

  const std::string bad = TempPath("validate_bad.jsonl");
  WriteFileBytes(bad, "{\"no_trainer\": true}\n");
  EXPECT_FALSE(obs::ValidateArtifact(bad).ok());

  const std::string unknown = TempPath("validate_unknown.json");
  WriteFileBytes(unknown, "{\"mystery\": 1}");
  EXPECT_FALSE(obs::ValidateArtifact(unknown).ok());
}

}  // namespace
}  // namespace openima
